// lfbs_report: render a JSONL telemetry stream (lfbs_decode --trace-out,
// bench_robustness_sweep --trace-out) into per-stage and per-frame
// accounting, from the file alone — no access to the run that produced it.
//
// Usage:
//   lfbs_report <telemetry.jsonl>
//
// Reads every line as one JSON object and groups by "type":
//   span     → per-stage table: count, total/mean/p50/p90/p99 duration
//   frame    → frame accounting: per fallback stage, CRC results,
//              confidence distribution
//   health   → supervisor health transitions, in order
//   ledger   → per-tag quarantine/recovery transitions
//   rate     → rate-control decisions
//   net      → gateway activity: connects, subscribes, per-client
//              disconnect accounting (frames sent / queue drops),
//              evictions, protocol errors; "overload" summary events
//              render an extra section with the typed shed ledger
//              (admission denies, quota/budget/ring sheds, replay
//              truncation) and check that the frame ledger closes
//   chaos    → injected-fault breakdown per fault class, when the run
//              carried a --chaos spec
//   control  → fleet control plane: plan history (epoch, policy,
//              predicted goodput, collision pressure) and per-tag rate
//              trajectories reconstructed from the assign events alone
//   snapshot → count only (periodic metric snapshots)
//
// Exit status: 0 on a parseable stream (even an empty one); 2 when the
// file cannot be read or no line parses as JSON.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

struct StageStats {
  std::vector<double> durations_ms;
  double total_ms = 0.0;
};

std::string fmt_ms(double ms) { return sim::fmt(ms, 3); }

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::fprintf(stderr, "usage: lfbs_report <telemetry.jsonl>\n");
    return argc == 2 ? 0 : 2;
  }
  std::ifstream in(argv[1]);
  if (!in.is_open()) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 2;
  }

  std::map<std::string, StageStats> stages;
  std::map<std::int64_t, std::size_t> frames_by_stage;
  std::size_t frames_total = 0;
  std::size_t frames_crc_ok = 0;
  std::size_t frames_collided = 0;
  std::vector<double> confidences;
  std::vector<std::string> health_log;
  std::vector<std::string> ledger_log;
  std::vector<std::string> rate_log;
  std::map<std::string, std::size_t> net_actions;
  std::vector<std::string> net_log;
  std::size_t net_frames_sent = 0;
  std::size_t net_drops = 0;
  // Overload-protection summary: one "overload" event per server at
  // shutdown carries its lifetime shed/admission ledger; aggregated here
  // across every server in the stream.
  struct OverloadTotals {
    bool seen = false;
    std::size_t denies = 0, quota_sheds = 0, budget_sheds = 0,
                budget_refusals = 0, ring_sheds = 0, queue_drops = 0,
                enqueued = 0, sent = 0, discarded = 0, replay_truncated = 0,
                peak_queue_bytes = 0;
  } overload;
  std::size_t replay_shortfall_frames = 0;
  std::map<std::string, std::size_t> federation_actions;
  std::vector<std::string> federation_log;
  std::map<std::string, std::size_t> chaos_faults;
  // Fleet control plane: plan history plus, per tag, the deduplicated
  // sequence of assigned rates — the trajectory an operator asks about
  // first ("when did tag 3 get demoted, and did it come back?").
  std::map<std::string, std::size_t> control_actions;
  std::vector<std::string> control_log;
  std::size_t control_plans_applied = 0;
  std::map<std::int64_t, std::vector<double>> control_rate_traj;
  std::map<std::int64_t, std::size_t> control_assign_counts;
  std::int64_t relay_max_hops = 0;
  std::size_t snapshots = 0;
  std::size_t lines_total = 0;
  std::size_t lines_bad = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines_total;
    std::string error;
    const auto parsed = obs::parse_json(line, &error);
    if (!parsed.has_value() || !parsed->is_object()) {
      ++lines_bad;
      continue;
    }
    const obs::JsonValue& v = *parsed;
    const std::string type = v.member_str("type", "");
    if (type == "span") {
      const std::string name = v.member_str("name", "?");
      const double dur_ms = v.member_num("dur_us", 0.0) / 1e3;
      StageStats& s = stages[name];
      s.durations_ms.push_back(dur_ms);
      s.total_ms += dur_ms;
    } else if (type == "frame") {
      ++frames_total;
      if (v.member_bool("crc_ok", false)) ++frames_crc_ok;
      if (v.member_bool("collided", false)) ++frames_collided;
      ++frames_by_stage[static_cast<std::int64_t>(
          v.member_num("fallback_stage", 0.0))];
      confidences.push_back(v.member_num("confidence", 0.0));
    } else if (type == "health") {
      health_log.push_back(std::string(v.member_str("from", "?")) + " -> " +
                           std::string(v.member_str("to", "?")));
    } else if (type == "ledger") {
      ledger_log.push_back(std::string(v.member_str("transition", "?")) +
                           " (conf " +
                           sim::fmt(v.member_num("last_confidence", 0.0), 2) +
                           ")");
    } else if (type == "rate") {
      rate_log.push_back(std::string(v.member_str("cause", "?")) + ": " +
                         sim::fmt(v.member_num("from_rate", 0.0) / 1e3, 0) +
                         " -> " +
                         sim::fmt(v.member_num("to_rate", 0.0) / 1e3, 0) +
                         " kbps");
    } else if (type == "net") {
      const std::string action = v.member_str("action", "?");
      ++net_actions[action];
      // Close-of-connection events carry the client's lifetime totals.
      if (action == "disconnect" || action == "evict" ||
          action == "protocol-error" || action == "shutdown") {
        const auto frames =
            static_cast<std::size_t>(v.member_num("frames", 0.0));
        const auto drops =
            static_cast<std::size_t>(v.member_num("drops", 0.0));
        net_frames_sent += frames;
        net_drops += drops;
        net_log.push_back(
            "client " +
            std::to_string(
                static_cast<std::int64_t>(v.member_num("client", 0.0))) +
            " " + action + ": " + std::to_string(frames) +
            " frames sent, " + std::to_string(drops) + " dropped");
      } else if (action == "overload") {
        const auto u = [&](const char* key) {
          return static_cast<std::size_t>(v.member_num(key, 0.0));
        };
        overload.seen = true;
        overload.denies += u("denies");
        overload.quota_sheds += u("quota_sheds");
        overload.budget_sheds += u("budget_sheds");
        overload.budget_refusals += u("budget_refusals");
        overload.ring_sheds += u("ring_sheds");
        overload.queue_drops += u("queue_drops");
        overload.enqueued += u("enqueued");
        overload.sent += u("sent");
        overload.discarded += u("discarded");
        overload.replay_truncated += u("replay_truncated");
        overload.peak_queue_bytes =
            std::max(overload.peak_queue_bytes, u("peak_queue_bytes"));
      } else if (action == "replay-truncated") {
        replay_shortfall_frames +=
            static_cast<std::size_t>(v.member_num("shortfall", 0.0));
      }
    } else if (type == "federation") {
      const std::string action = v.member_str("action", "?");
      ++federation_actions[action];
      if (action == "relay") {
        relay_max_hops =
            std::max(relay_max_hops,
                     static_cast<std::int64_t>(v.member_num("hops", 0.0)));
      } else if (action == "shard-run") {
        federation_log.push_back(
            "shard run: " +
            std::to_string(
                static_cast<std::int64_t>(v.member_num("windows", 0.0))) +
            " windows over " +
            std::to_string(
                static_cast<std::int64_t>(v.member_num("workers", 0.0))) +
            " workers, " +
            std::to_string(
                static_cast<std::int64_t>(v.member_num("frames", 0.0))) +
            " frames, p99 " +
            sim::fmt(v.member_num("latency_p99_ms", 0.0), 2) + " ms");
      }
    } else if (type == "chaos") {
      ++chaos_faults[std::string(v.member_str("fault", "?"))];
    } else if (type == "control") {
      const std::string action = v.member_str("action", "?");
      ++control_actions[action];
      if (action == "plan") {
        if (v.member_bool("applied", false)) ++control_plans_applied;
        control_log.push_back(
            "epoch " +
            std::to_string(
                static_cast<std::int64_t>(v.member_num("epoch", 0.0))) +
            ": " + std::string(v.member_str("policy", "?")) + ", " +
            std::to_string(
                static_cast<std::int64_t>(v.member_num("tags", 0.0))) +
            " tags, predicted " +
            sim::fmt(v.member_num("predicted_goodput", 0.0), 0) +
            " b/s, pressure " +
            sim::fmt(v.member_num("collision_pressure", 0.0), 2) +
            (v.member_bool("applied", false) ? "" : " (not applied)"));
      } else if (action == "assign") {
        const auto tag =
            static_cast<std::int64_t>(v.member_num("tag", 0.0));
        const double rate = v.member_num("rate", 0.0);
        auto& traj = control_rate_traj[tag];
        if (traj.empty() || traj.back() != rate) traj.push_back(rate);
        ++control_assign_counts[tag];
      } else if (action == "set") {
        control_log.push_back(
            "set: frozen=" +
            std::string(v.member_bool("frozen", false) ? "yes" : "no") +
            ", target " + sim::fmt(v.member_num("target_goodput", 0.0), 0) +
            " b/s, min confidence " +
            sim::fmt(v.member_num("min_confidence", 0.0), 2) + ", max rate " +
            sim::fmt(v.member_num("max_rate", 0.0) / 1e3, 1) + " kbps");
      }
    } else if (type == "snapshot") {
      ++snapshots;
    }
  }
  if (lines_total == 0 || lines_bad == lines_total) {
    std::fprintf(stderr, "error: %s holds no parseable JSONL (%zu lines)\n",
                 argv[1], lines_total);
    return 2;
  }

  std::printf("%s: %zu telemetry lines (%zu unparsed), %zu snapshots\n",
              argv[1], lines_total, lines_bad, snapshots);

  if (!stages.empty()) {
    std::printf("\n== per-stage time ==\n");
    sim::Table table({"stage", "count", "total (ms)", "mean (ms)",
                      "p50 (ms)", "p90 (ms)", "p99 (ms)"});
    // Heaviest stages first: that is what a reader scans for.
    std::vector<std::pair<std::string, const StageStats*>> order;
    for (const auto& [name, s] : stages) order.emplace_back(name, &s);
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      return a.second->total_ms > b.second->total_ms;
    });
    for (const auto& [name, s] : order) {
      const auto n = static_cast<double>(s->durations_ms.size());
      table.add_row({name, std::to_string(s->durations_ms.size()),
                     fmt_ms(s->total_ms), fmt_ms(s->total_ms / n),
                     fmt_ms(obs::Histogram::percentile(s->durations_ms, 0.50)),
                     fmt_ms(obs::Histogram::percentile(s->durations_ms, 0.90)),
                     fmt_ms(obs::Histogram::percentile(s->durations_ms,
                                                       0.99))});
    }
    table.print();
  }

  if (frames_total > 0) {
    std::printf("\n== frames ==\n");
    std::printf("%zu frames, %zu CRC-valid, %zu from collided streams\n",
                frames_total, frames_crc_ok, frames_collided);
    sim::Table table({"fallback stage", "frames"});
    for (const auto& [stage, count] : frames_by_stage) {
      table.add_row({std::to_string(stage), std::to_string(count)});
    }
    table.print();
    std::printf("confidence p50/p90 %.2f/%.2f, min %.2f\n",
                obs::Histogram::percentile(confidences, 0.50),
                obs::Histogram::percentile(confidences, 0.90),
                *std::min_element(confidences.begin(), confidences.end()));
  }

  if (!health_log.empty()) {
    std::printf("\n== health transitions ==\n");
    for (const auto& h : health_log) std::printf("  %s\n", h.c_str());
  }
  if (!ledger_log.empty()) {
    std::printf("\n== ledger transitions ==\n");
    for (const auto& l : ledger_log) std::printf("  %s\n", l.c_str());
  }
  if (!rate_log.empty()) {
    std::printf("\n== rate commands ==\n");
    for (const auto& r : rate_log) std::printf("  %s\n", r.c_str());
  }
  if (!control_actions.empty()) {
    std::printf("\n== control ==\n");
    const auto action_count = [&](const char* key) {
      const auto it = control_actions.find(key);
      return it == control_actions.end() ? std::size_t{0} : it->second;
    };
    std::printf("%zu plans (%zu applied), %zu assignments, %zu knob sets\n",
                action_count("plan"), control_plans_applied,
                action_count("assign"), action_count("set"));
    for (const auto& c : control_log) std::printf("  %s\n", c.c_str());
    if (!control_rate_traj.empty()) {
      std::printf("per-tag rate trajectories:\n");
      sim::Table table({"tag", "assignments", "rate trajectory (kbps)"});
      for (const auto& [tag, traj] : control_rate_traj) {
        std::string path;
        for (const double rate : traj) {
          if (!path.empty()) path += " -> ";
          path += sim::fmt(rate / 1e3, 1);
        }
        table.add_row({std::to_string(tag),
                       std::to_string(control_assign_counts[tag]), path});
      }
      table.print();
    }
  }
  if (!net_actions.empty()) {
    std::printf("\n== gateway ==\n");
    sim::Table table({"event", "count"});
    for (const auto& [action, count] : net_actions) {
      table.add_row({action, std::to_string(count)});
    }
    table.print();
    std::printf("%zu frames delivered, %zu dropped to slow consumers\n",
                net_frames_sent, net_drops);
    for (const auto& n : net_log) std::printf("  %s\n", n.c_str());
  }
  if (overload.seen) {
    std::printf("\n== overload ==\n");
    sim::Table table({"metric", "count"});
    table.add_row({"admission denies", std::to_string(overload.denies)});
    table.add_row({"quota sheds (fps)", std::to_string(overload.quota_sheds)});
    table.add_row({"budget sheds (queued)",
                   std::to_string(overload.budget_sheds)});
    table.add_row({"budget refusals (incoming)",
                   std::to_string(overload.budget_refusals)});
    table.add_row({"ring sheds (history)",
                   std::to_string(overload.ring_sheds)});
    table.add_row({"slow-consumer drops",
                   std::to_string(overload.queue_drops)});
    table.add_row({"replay truncations",
                   std::to_string(overload.replay_truncated)});
    table.add_row({"peak queue+ring bytes",
                   std::to_string(overload.peak_queue_bytes)});
    table.print();
    // The frame ledger from the overload summary events: every enqueued
    // frame is either sent or accounted to a typed loss.
    const std::size_t accounted = overload.sent + overload.queue_drops +
                                  overload.budget_sheds + overload.discarded;
    if (overload.enqueued == accounted) {
      std::printf(
          "frame ledger closes: %zu enqueued == %zu sent + %zu dropped + "
          "%zu shed + %zu discarded\n",
          overload.enqueued, overload.sent, overload.queue_drops,
          overload.budget_sheds, overload.discarded);
    } else {
      std::printf(
          "frame ledger MISMATCH: %zu enqueued vs %zu accounted "
          "(%zu sent + %zu dropped + %zu shed + %zu discarded)\n",
          overload.enqueued, accounted, overload.sent, overload.queue_drops,
          overload.budget_sheds, overload.discarded);
    }
    if (replay_shortfall_frames > 0) {
      std::printf("replay shortfall acked to resubscribers: %zu frames\n",
                  replay_shortfall_frames);
    }
  }
  if (!federation_actions.empty()) {
    std::printf("\n== federation ==\n");
    sim::Table table({"event", "count"});
    for (const auto& [action, count] : federation_actions) {
      table.add_row({action, std::to_string(count)});
    }
    table.print();
    if (federation_actions.count("relay") > 0) {
      std::printf("%zu frames relayed, deepest hop count %lld\n",
                  federation_actions.at("relay"),
                  static_cast<long long>(relay_max_hops));
    }
    for (const auto& f : federation_log) std::printf("  %s\n", f.c_str());
  }
  if (!chaos_faults.empty()) {
    std::printf("\n== chaos ==\n");
    sim::Table table({"fault", "count"});
    std::size_t total = 0;
    for (const auto& [fault, count] : chaos_faults) {
      table.add_row({fault, std::to_string(count)});
      total += count;
    }
    table.print();
    std::printf("%zu faults injected\n", total);
  }
  return 0;
}

// lfbs_gateway: network frame gateway — decode on one machine, consume on
// another. One binary, five roles:
//
// Serve (default): decode a source and fan the frames out over TCP (LFBW1)
//   lfbs_gateway <capture.lfbsiq> [--port N] [--port-file PATH] ...
//   lfbs_gateway --scenario [--tags N] [--epochs N] ...
//   lfbs_gateway --iq-listen [--iq-port N] [--iq-port-file PATH] ...
//     (--iq-listen decodes IQ pushed to it by a remote `--push` process)
//   Adding --shard HOST:PORT (repeatable) decodes via a pool of remote
//   shard workers instead of local threads — bit-identical output.
//
// Tail: subscribe to a serving gateway and print frames as they arrive
//   lfbs_gateway --connect HOST:PORT [--min-confidence X] [--crc-only]
//                [--quiet]
//
// Push: stream a capture file into a gateway running --iq-listen
//   lfbs_gateway --push HOST:PORT <capture.lfbsiq> [--f32]
//
// Relay: subscribe to upstream gateways, republish on an own frame port
//   lfbs_gateway --relay HOST:PORT [--relay HOST:PORT ...] --gateway-id N
//                [--hop-limit N] [serve options]
//   Loop-safe: own-origin frames, over-traveled frames (hop limit), and
//   identity duplicates are dropped, with counters for each.
//
// Shard worker: decode windows assigned by a --shard coordinator
//   lfbs_gateway --shard-worker [--port N] [--port-file PATH]
//
// Serve options:
//   --port N            frame port (default 0 = ephemeral, printed)
//   --port-file PATH    write the bound frame port to PATH (for scripts)
//   --wait-subscriber S wait up to S seconds for a subscriber before
//                       decoding starts (so a tail sees the whole stream)
//   --client-queue N    per-client send queue bound, messages (default 256;
//                       --queue-frames is the older spelling, same knob)
//   --slow-policy P     drop | evict: what a slow consumer loses (drop =
//                       oldest queued frame, evict = the connection; the
//                       old --evict-slow flag is shorthand for evict)
//   --send-buffer N     kernel send-buffer bytes per client (testing)
//   --workers N         decode worker threads (default 4)
//   --crc5 / --payload N / --windowed MS   decoder knobs (as lfbs_decode)
//   --trace-out PATH    JSONL telemetry incl. net.* events ("-" = stdout)
//
// Overload protection (serve/relay; see docs/DESIGN.md §4h):
//   --quota SPEC        admission control: comma-separated key=value —
//                       conns=N, retry-after=S, be-clients=N, be-fps=X,
//                       be-queue-kb=N, prio-clients=N, prio-fps=X,
//                       prio-queue-kb=N. Over-budget dials get a typed
//                       Bye(admission-denied) with a retry-after hint.
//   --queue-budget-kb N global byte budget across every per-client send
//                       queue, the replay ring, and the shard
//                       coordinator's in-flight windows. Saturation sheds
//                       best-effort traffic in tiers (ring history first)
//                       and backpressures the decode pipeline; priority
//                       subscribers are never shed.
//   --retry-after S     override the deny retry hint (default 0.5)
//   --max-clients N     accepted-fd bound (default: admission conns + 64
//                       headroom so over-budget dials reach the deny path)
//   --priority          tail only: announce ClientClass::kPriority
//
// The server publishes a final stats message (frames_published et al.)
// before closing each subscriber with Bye(end-of-stream), so a tailing
// client can verify it missed nothing; --connect does that check and
// reports it.
//
// Exit status — serve: 0 at least one CRC-valid frame published, 1 none,
// 2 usage/IO error; 130/143 after SIGINT/SIGTERM (graceful drain first).
// Tail: 0 clean end-of-stream with complete delivery, 1 incomplete
// (evicted, frames missed, or server stopped early), 2 connection error.
// Push: 0 on a fully acknowledged stream, 3 when the receiver died
// mid-stream (after the handshake; counted under net.push_aborts),
// 2 on any other failure (bad dial, refused handshake, usage).
//
// Robustness knobs:
//   --replay N   serve/relay: keep the last N published frames and replay
//                them to subscribers that ask (filter replay_recent) — the
//                partition-recovery ring relay links heal from
//   --chaos SPEC deterministic socket fault injection for this process
//                (key=value[,key=value...]; see docs/DESIGN.md §4g). Test
//                instrumentation only — faults are injected, not real.
//
// Fleet control plane (serve; see docs/DESIGN.md §4i):
//   --control SPEC       run an epoch-scheduling ControlLoop over the
//                        published frame stream (key=value[,key=value...]
//                        or the literal "on"): policy=greedy|static,
//                        seed=N, target-goodput=X, min-confidence=X,
//                        max-rate=X, budget=X, penalty=X, freeze=0|1,
//                        alpha=X, forget=N, period-ms=X. The plan is
//                        broadcast as a kControlPlan after the run drains
//                        (and every period-ms while it streams).
//   --control-policy P   override the scheduling policy (greedy | static)
//   --epoch-budget N     override the aggregate-rate budget, multiples of
//                        the base rate
//   --control-get HOST:PORT   one-shot client: fetch and print a serving
//                        gateway's live control state/plan, then exit
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/shutdown.h"
#include "control/control_loop.h"
#include "control/spec.h"
#include "net/chaos/chaos.h"
#include "net/federation/relay.h"
#include "net/federation/shard.h"
#include "net/federation/shard_worker.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/iq_ingest.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/runtime.h"
#include "sim/scenario.h"

using namespace lfbs;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: lfbs_gateway <capture.lfbsiq> [serve options]\n"
      "       lfbs_gateway --scenario [--tags N] [--epochs N] [serve "
      "options]\n"
      "       lfbs_gateway --iq-listen [--iq-port N] [--iq-port-file PATH] "
      "[serve options]\n"
      "       lfbs_gateway --connect HOST:PORT [--min-confidence X] "
      "[--crc-only] [--quiet]\n"
      "       lfbs_gateway --push HOST:PORT <capture.lfbsiq> [--f32]\n"
      "       lfbs_gateway --relay HOST:PORT [--relay HOST:PORT ...]\n"
      "                    --gateway-id N [--hop-limit N] [serve options]\n"
      "       lfbs_gateway --shard-worker [--port N] [--port-file PATH]\n"
      "serve options: [--port N] [--port-file PATH] [--wait-subscriber S]\n"
      "               [--client-queue N] [--slow-policy drop|evict]\n"
      "               [--send-buffer N] [--workers N] [--crc5] [--payload N]\n"
      "               [--windowed MS] [--gateway-id N] [--shard HOST:PORT]\n"
      "               [--replay N] [--trace-out PATH] [--chaos SPEC]\n"
      "overload:      [--quota SPEC] [--queue-budget-kb N] [--retry-after S]\n"
      "               [--max-clients N]   (tail: [--priority])\n"
      "control plane: [--control SPEC] [--control-policy greedy|static]\n"
      "               [--epoch-budget N]   (client: --control-get "
      "HOST:PORT)\n");
}

bool split_host_port(const std::string& spec, std::string& host,
                     std::uint16_t& port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  host = spec.substr(0, colon);
  const int p = atoi(spec.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

std::string bits_hex(const std::vector<bool>& bits) {
  std::string out;
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    unsigned nibble = 0;
    for (std::size_t b = 0; b < 4 && i + b < bits.size(); ++b) {
      nibble = (nibble << 1) | (bits[i + b] ? 1u : 0u);
    }
    out += "0123456789abcdef"[nibble & 0xF];
  }
  return out;
}

/// One control-plane state/plan, in the grep-friendly shape the smoke
/// scripts and a tailing operator both read.
void print_control_plan(const net::ControlPlanMsg& plan) {
  if (!plan.enabled) {
    std::printf("control: disabled\n");
    return;
  }
  std::printf(
      "control: epoch=%llu policy=%s%s tags=%zu predicted=%.6g b/s "
      "pressure=%.3f\n",
      static_cast<unsigned long long>(plan.epoch), plan.policy.c_str(),
      plan.frozen ? " (frozen)" : "", plan.assignments.size(),
      plan.predicted_goodput, plan.collision_pressure);
  for (const auto& a : plan.assignments) {
    std::printf("control: tag=%llu rate=%s predicted=%.6g b/s\n",
                static_cast<unsigned long long>(a.tag),
                format_rate(a.rate).c_str(), a.goodput);
  }
}

int run_control_get(const std::string& spec) {
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(spec, host, port)) {
    std::fprintf(stderr, "error: --control-get wants HOST:PORT, got '%s'\n",
                 spec.c_str());
    return 2;
  }
  try {
    print_control_plan(net::fetch_control(host, port));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int run_tail(const std::string& spec, double min_confidence, bool crc_only,
             bool quiet, bool priority) {
  net::FrameClientConfig cc;
  if (!split_host_port(spec, cc.host, cc.port)) {
    std::fprintf(stderr, "error: --connect wants HOST:PORT, got '%s'\n",
                 spec.c_str());
    return 2;
  }
  cc.name = "lfbs_gateway --connect";
  cc.filter.min_confidence = min_confidence;
  cc.filter.crc_valid_only = crc_only;
  if (priority) cc.client_class = net::ClientClass::kPriority;

  net::FrameClient client(cc);
  install_shutdown_handlers();
  std::optional<net::WireStats> final_stats;
  net::FrameClient::Callbacks callbacks;
  callbacks.on_frame = [&](const runtime::FrameEvent& event) {
    if (shutdown_flag().load()) client.stop();
    if (quiet) return;
    std::printf("frame: stream=%zu rate=%s conf=%.2f crc=%s payload=%s\n",
                event.stream_index, format_rate(event.rate).c_str(),
                event.confidence, event.frame.crc_ok ? "ok" : "BAD",
                bits_hex(event.frame.payload).c_str());
  };
  callbacks.on_stats = [&](const net::WireStats& stats) {
    final_stats = stats;
  };
  callbacks.on_control = [&](const net::ControlPlanMsg& plan) {
    if (!quiet) print_control_plan(plan);
  };

  net::Bye bye;
  try {
    bye = client.run(callbacks);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const auto& counters = client.counters();
  std::fprintf(stderr, "tail: %zu frames, %zu reconnects, bye=%s\n",
               counters.frames_received, counters.reconnects,
               net::to_string(bye.reason));
  if (bye.reason != net::ByeReason::kEndOfStream) return 1;
  if (final_stats.has_value()) {
    // An unfiltered tail should have seen every published frame; a
    // filtered one cannot check completeness, only report.
    const bool filtered = min_confidence > 0.0 || crc_only;
    if (!filtered &&
        counters.frames_received != final_stats->frames_published) {
      std::fprintf(stderr,
                   "tail: INCOMPLETE — server published %llu frames, "
                   "received %zu\n",
                   static_cast<unsigned long long>(
                       final_stats->frames_published),
                   counters.frames_received);
      return 1;
    }
    if (final_stats->stopped_early) return 1;
  }
  return shutdown_exit_code(0);
}

int run_push(const std::string& spec, const std::string& capture, bool f64) {
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(spec, host, port)) {
    std::fprintf(stderr, "error: --push wants HOST:PORT, got '%s'\n",
                 spec.c_str());
    return 2;
  }
  try {
    runtime::IqFileSource source(capture, 1 << 16);
    const std::uint64_t pushed = net::push_iq(host, port, source, f64);
    std::fprintf(stderr, "push: %llu samples at %.6g Msps (%s)\n",
                 static_cast<unsigned long long>(pushed),
                 source.sample_rate() / 1e6, f64 ? "f64" : "f32");
    return 0;
  } catch (const net::PushAborted& e) {
    // Typed: the receiver acknowledged the stream then died under it.
    // Scripts can tell this (3) from a dead/refusing receiver (2).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  std::ofstream os(path);
  os << port << "\n";
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  if (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    usage();
    return 0;
  }

  std::string capture;
  bool scenario_mode = false;
  bool iq_listen = false;
  std::string connect_spec;
  std::string push_spec;
  std::size_t tags = 8;
  std::size_t epochs = 4;
  std::uint16_t port = 0;
  std::uint16_t iq_port = 0;
  std::string port_file;
  std::string iq_port_file;
  double wait_subscriber = 0.0;
  std::size_t queue_frames = 256;
  bool evict_slow = false;
  std::size_t send_buffer = 0;
  std::size_t workers = 4;
  double window_ms = 0.0;
  double min_confidence = 0.0;
  bool crc_only = false;
  bool quiet = false;
  bool f64 = true;
  core::DecoderConfig dc;
  std::string trace_out;
  std::vector<std::string> relay_specs;
  std::vector<std::string> shard_specs;
  std::uint64_t gateway_id = 0;
  int hop_limit = 4;
  bool shard_worker_mode = false;
  std::size_t replay_frames = 0;
  std::string chaos_spec;
  std::string quota_spec;
  std::string control_spec;
  std::string control_policy;
  std::string epoch_budget;
  std::string control_get_spec;
  std::size_t queue_budget_kb = 0;
  double retry_after = -1.0;  // <0 = keep the spec/default hint
  std::size_t max_clients = 0;
  bool tail_priority = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario") {
      scenario_mode = true;
    } else if (arg == "--iq-listen") {
      iq_listen = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg == "--push" && i + 1 < argc) {
      push_spec = argv[++i];
    } else if (arg == "--tags" && i + 1 < argc) {
      tags = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--epochs" && i + 1 < argc) {
      epochs = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(atoi(argv[++i]));
    } else if (arg == "--iq-port" && i + 1 < argc) {
      iq_port = static_cast<std::uint16_t>(atoi(argv[++i]));
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--iq-port-file" && i + 1 < argc) {
      iq_port_file = argv[++i];
    } else if (arg == "--wait-subscriber" && i + 1 < argc) {
      wait_subscriber = atof(argv[++i]);
    } else if ((arg == "--queue-frames" || arg == "--client-queue") &&
               i + 1 < argc) {
      queue_frames = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--evict-slow") {
      evict_slow = true;
    } else if (arg == "--slow-policy" && i + 1 < argc) {
      const std::string policy = argv[++i];
      if (policy == "drop") {
        evict_slow = false;
      } else if (policy == "evict") {
        evict_slow = true;
      } else {
        std::fprintf(stderr,
                     "error: --slow-policy wants drop or evict, got '%s'\n",
                     policy.c_str());
        return 2;
      }
    } else if (arg == "--quota" && i + 1 < argc) {
      quota_spec = argv[++i];
    } else if (arg == "--control" && i + 1 < argc) {
      control_spec = argv[++i];
    } else if (arg == "--control-policy" && i + 1 < argc) {
      control_policy = argv[++i];
    } else if (arg == "--epoch-budget" && i + 1 < argc) {
      epoch_budget = argv[++i];
    } else if (arg == "--control-get" && i + 1 < argc) {
      control_get_spec = argv[++i];
    } else if (arg == "--queue-budget-kb" && i + 1 < argc) {
      queue_budget_kb = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--retry-after" && i + 1 < argc) {
      retry_after = atof(argv[++i]);
    } else if (arg == "--max-clients" && i + 1 < argc) {
      max_clients = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--priority") {
      tail_priority = true;
    } else if (arg == "--send-buffer" && i + 1 < argc) {
      send_buffer = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--crc5") {
      dc.frame.crc = protocol::CrcKind::kCrc5;
    } else if (arg == "--payload" && i + 1 < argc) {
      dc.frame.payload_bits = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--windowed" && i + 1 < argc) {
      window_ms = atof(argv[++i]);
    } else if (arg == "--min-confidence" && i + 1 < argc) {
      min_confidence = atof(argv[++i]);
    } else if (arg == "--crc-only") {
      crc_only = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--f32") {
      f64 = false;
    } else if (arg == "--relay" && i + 1 < argc) {
      relay_specs.push_back(argv[++i]);
    } else if (arg == "--shard" && i + 1 < argc) {
      shard_specs.push_back(argv[++i]);
    } else if (arg == "--gateway-id" && i + 1 < argc) {
      gateway_id = static_cast<std::uint64_t>(atoll(argv[++i]));
    } else if (arg == "--hop-limit" && i + 1 < argc) {
      hop_limit = atoi(argv[++i]);
    } else if (arg == "--shard-worker") {
      shard_worker_mode = true;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_frames = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--chaos" && i + 1 < argc) {
      chaos_spec = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      capture = arg;
    } else {
      usage();
      return 2;
    }
  }

  // Overload protection: parse --quota up front so a malformed spec is a
  // typed usage error, not a mid-serve surprise. The budget and gate live
  // here — main's scope — because the FrameServer, the DecodeRuntime, and
  // a shard coordinator all borrow them and must not outlive them.
  net::AdmissionConfig admission;
  if (!quota_spec.empty()) {
    try {
      admission = net::parse_quota_spec(quota_spec);
    } catch (const net::QuotaParseError& e) {
      std::fprintf(stderr, "error: bad --quota spec (%s): %s\n",
                   net::to_string(e.code()), e.what());
      return 2;
    }
  }
  if (retry_after >= 0.0) admission.retry_after = retry_after;

  // Fleet control plane: like --quota, every spec is parsed up front so a
  // malformed one is a typed usage error (exit 2) before anything binds.
  // --control-policy and --epoch-budget are standalone overrides: either
  // refines an existing --control spec or enables the loop with defaults.
  std::optional<control::ControlSpec> control_cfg;
  if (!control_spec.empty()) {
    try {
      control_cfg = control::parse_control_spec(control_spec);
    } catch (const control::ControlParseError& e) {
      std::fprintf(stderr, "error: bad --control spec (%s): %s\n",
                   control::to_string(e.code()), e.what());
      return 2;
    }
  }
  if (!control_policy.empty()) {
    try {
      const std::string name = control::parse_policy_name(control_policy);
      if (!control_cfg.has_value()) control_cfg.emplace();
      control_cfg->loop.policy = name;
    } catch (const control::ControlParseError& e) {
      std::fprintf(stderr, "error: bad --control-policy (%s): %s\n",
                   control::to_string(e.code()), e.what());
      return 2;
    }
  }
  if (!epoch_budget.empty()) {
    try {
      const double budget_units = control::parse_epoch_budget(epoch_budget);
      if (!control_cfg.has_value()) control_cfg.emplace();
      control_cfg->loop.objective.epoch_budget = budget_units;
    } catch (const control::ControlParseError& e) {
      std::fprintf(stderr, "error: bad --epoch-budget (%s): %s\n",
                   control::to_string(e.code()), e.what());
      return 2;
    }
  }
  std::optional<net::ResourceBudget> budget;
  std::optional<runtime::BackpressureGate> gate;
  if (queue_budget_kb > 0) {
    budget.emplace(queue_budget_kb * 1024);
    gate.emplace();
  }
  const auto configure_overload = [&](net::FrameServerConfig& sc) {
    sc.admission = admission;
    if (budget.has_value()) sc.budget = &*budget;
    if (gate.has_value()) sc.backpressure = &*gate;
    if (max_clients > 0) {
      sc.max_clients = max_clients;
    } else if (admission.enabled && admission.max_connections > 0) {
      // Admission owns the connection count; the fd bound only needs
      // headroom so every over-budget dial reaches the typed deny path
      // instead of parking in the kernel backlog.
      sc.max_clients = admission.max_connections + 64;
    }
  };

  // Chaos install covers every role — tail, push, relay, serve, worker —
  // so soak scripts can point the same --chaos spec at any process.
  std::unique_ptr<net::ChaosEngine> chaos_engine;
  std::optional<net::ChaosScope> chaos_scope;
  if (!chaos_spec.empty()) {
    try {
      chaos_engine =
          std::make_unique<net::ChaosEngine>(net::parse_chaos_config(chaos_spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad --chaos spec: %s\n", e.what());
      return 2;
    }
    chaos_scope.emplace(*chaos_engine);
  }

  // Telemetry likewise: every role can --trace-out its net.* / chaos
  // events (the soak scripts read the pusher's abort event from here).
  std::unique_ptr<obs::JsonlWriter> telemetry_writer;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::EventLog> event_log;
  if (!trace_out.empty()) {
    telemetry_writer = std::make_unique<obs::JsonlWriter>(trace_out);
    if (!telemetry_writer->ok()) {
      std::fprintf(stderr, "error: cannot open --trace-out %s\n",
                   trace_out.c_str());
      return 2;
    }
    tracer = std::make_unique<obs::Tracer>();
    tracer->set_sink(telemetry_writer.get());
    obs::set_tracer(tracer.get());
    event_log = std::make_unique<obs::EventLog>(*telemetry_writer);
    obs::set_event_log(event_log.get());
  }
  const auto flush_telemetry = [&] {
    if (tracer) tracer->flush();
    if (telemetry_writer) telemetry_writer->flush();
    obs::set_tracer(nullptr);
    obs::set_event_log(nullptr);
  };

  // --- client roles: tail / push / control probe --------------------------
  if (!connect_spec.empty() || !push_spec.empty() ||
      !control_get_spec.empty()) {
    int code;
    if (!control_get_spec.empty()) {
      code = run_control_get(control_get_spec);
    } else if (!connect_spec.empty()) {
      code = run_tail(connect_spec, min_confidence, crc_only, quiet,
                      tail_priority);
    } else if (capture.empty()) {
      std::fprintf(stderr, "error: --push needs a capture file\n");
      code = 2;
    } else {
      code = run_push(push_spec, capture, f64);
    }
    flush_telemetry();
    return code;
  }
  const int source_modes = (capture.empty() ? 0 : 1) +
                           (scenario_mode ? 1 : 0) + (iq_listen ? 1 : 0);
  if (!shard_worker_mode && relay_specs.empty() && source_modes != 1) {
    usage();
    return 2;
  }

  // --- shard worker: one coordinator session, then exit ------------------
  if (shard_worker_mode) {
    try {
      net::federation::ShardWorkerConfig wc;
      wc.port = port;
      net::federation::ShardWorker worker(wc);
      std::fprintf(stderr, "gateway: shard worker on port %u\n",
                   worker.port());
      if (!port_file.empty() && !write_port_file(port_file, worker.port())) {
        std::fprintf(stderr, "error: cannot write --port-file %s\n",
                     port_file.c_str());
        return 2;
      }
      install_shutdown_handlers();
      std::atomic<bool> done{false};
      std::thread watcher([&] {
        while (!done.load() && !shutdown_flag().load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        if (!done.load()) worker.stop();
      });
      const std::size_t windows = worker.serve();
      done.store(true);
      watcher.join();
      std::fprintf(stderr, "gateway: shard worker decoded %zu windows\n",
                   windows);
      flush_telemetry();
      return shutdown_exit_code(0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      flush_telemetry();
      return 2;
    }
  }

  // --- serve / relay -------------------------------------------------------
  int exit_code = 2;

  // --- relay: republish upstream gateways on an own frame port ------------
  if (!relay_specs.empty()) {
    try {
      if (gateway_id == 0) {
        std::fprintf(stderr, "error: --relay requires --gateway-id N\n");
        return 2;
      }
      net::FrameServerConfig sc;
      sc.port = port;
      sc.send_queue_messages = queue_frames;
      sc.slow_consumer = evict_slow ? net::SlowConsumerPolicy::kEvict
                                    : net::SlowConsumerPolicy::kDropOldest;
      sc.send_buffer_bytes = send_buffer;
      sc.origin_id = gateway_id;
      sc.replay_frames = replay_frames;
      configure_overload(sc);
      net::FrameServer server(sc);
      std::fprintf(stderr, "gateway: relay %llu serving frames on port %u\n",
                   static_cast<unsigned long long>(gateway_id),
                   server.port());
      if (!port_file.empty() && !write_port_file(port_file, server.port())) {
        std::fprintf(stderr, "error: cannot write --port-file %s\n",
                     port_file.c_str());
        return 2;
      }

      net::federation::RelayConfig rc;
      rc.gateway_id = gateway_id;
      rc.hop_limit = static_cast<std::uint8_t>(
          std::max(0, std::min(hop_limit, 255)));
      rc.name = "lfbs_gateway --relay";
      rc.filter.min_confidence = min_confidence;
      rc.filter.crc_valid_only = crc_only;
      for (const auto& spec : relay_specs) {
        net::federation::RelayUpstream upstream;
        if (!split_host_port(spec, upstream.host, upstream.port)) {
          std::fprintf(stderr, "error: --relay wants HOST:PORT, got '%s'\n",
                       spec.c_str());
          return 2;
        }
        rc.upstreams.push_back(upstream);
      }
      net::federation::FrameRelay relay(rc, server);

      install_shutdown_handlers();
      std::atomic<bool> done{false};
      std::thread watcher([&] {
        while (!done.load() && !shutdown_flag().load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        if (!done.load()) relay.stop();
      });
      // Wait for a downstream tail BEFORE subscribing upstream: an
      // upstream holding its decode on --wait-subscriber releases it the
      // moment we connect, and those frames must not land on an empty
      // FrameServer.
      if (wait_subscriber > 0.0 &&
          !server.wait_for_subscriber(wait_subscriber)) {
        std::fprintf(stderr,
                     "gateway: no subscriber within %.1fs, relaying anyway\n",
                     wait_subscriber);
      }
      relay.start();
      const bool clean = relay.join();
      done.store(true);
      watcher.join();

      const auto counters = relay.counters();
      runtime::RuntimeStats stats;
      stats.frames_published = counters.relayed;
      server.publish_stats(stats);
      server.shutdown(/*drain=*/true);
      std::fprintf(stderr,
                   "gateway: relayed %zu frames (%zu dup, %zu loop, %zu hop "
                   "drops), %zu upstream ends, %zu failures\n",
                   counters.relayed, counters.dup_drops, counters.loop_drops,
                   counters.hop_drops, counters.upstream_ends,
                   counters.upstream_failures);
      exit_code = clean ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      exit_code = 2;
    }
    flush_telemetry();
    return shutdown_exit_code(exit_code);
  }

  try {
    // Control plane: the loop is built only after the source exists (its
    // rate plan can come from the scenario's decoder config), but clients
    // can send control-get/-set the moment the server binds — so the
    // server hooks indirect through this slot. An unset slot answers
    // enabled=false, same as a gateway run without --control.
    std::mutex control_mutex;
    std::shared_ptr<control::ControlLoop> control_loop;

    net::FrameServerConfig sc;
    sc.port = port;
    sc.send_queue_messages = queue_frames;
    sc.slow_consumer = evict_slow ? net::SlowConsumerPolicy::kEvict
                                  : net::SlowConsumerPolicy::kDropOldest;
    sc.send_buffer_bytes = send_buffer;
    sc.origin_id = gateway_id;
    sc.replay_frames = replay_frames;
    configure_overload(sc);
    if (control_cfg.has_value()) {
      sc.control_get = [&control_mutex, &control_loop] {
        std::lock_guard<std::mutex> lock(control_mutex);
        return control_loop ? control_loop->wire_state()
                            : net::ControlPlanMsg{};
      };
      sc.control_set = [&control_mutex,
                        &control_loop](const net::ControlSet& set) {
        std::lock_guard<std::mutex> lock(control_mutex);
        return control_loop ? control_loop->apply_control_set(set)
                            : net::ControlPlanMsg{};
      };
    }
    net::FrameServer server(sc);
    std::fprintf(stderr, "gateway: serving frames on port %u\n",
                 server.port());
    if (!port_file.empty() && !write_port_file(port_file, server.port())) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   port_file.c_str());
      return 2;
    }

    install_shutdown_handlers();
    runtime::RuntimeConfig rc;
    rc.windowed.decoder = dc;
    if (window_ms > 0.0) rc.windowed.window = window_ms * 1e-3;
    rc.workers = workers;
    rc.stop_flag = &shutdown_flag();
    if (gate.has_value()) rc.backpressure = &*gate;

    // Build the source last: --iq-listen blocks here for a pusher.
    Rng rng(2025);
    sim::ScenarioConfig scenario_config;
    scenario_config.num_tags = tags;
    std::unique_ptr<sim::Scenario> scenario;
    std::unique_ptr<runtime::SampleSource> source;
    if (!capture.empty()) {
      source = std::make_unique<runtime::IqFileSource>(capture, 1 << 16);
    } else if (scenario_mode) {
      scenario = std::make_unique<sim::Scenario>(scenario_config, rng);
      rc.windowed.decoder = scenario->default_decoder();
      runtime::ScenarioSource::Config scfg;
      scfg.epochs = epochs;
      scfg.chunk_samples = 1 << 14;
      source = std::make_unique<runtime::ScenarioSource>(*scenario, rng, scfg);
    } else {
      net::IqIngestConfig ic;
      ic.port = iq_port;
      auto remote = std::make_unique<net::RemoteIqSource>(ic);
      std::fprintf(stderr, "gateway: listening for IQ on port %u\n",
                   remote->port());
      if (!iq_port_file.empty() &&
          !write_port_file(iq_port_file, remote->port())) {
        std::fprintf(stderr, "error: cannot write --iq-port-file %s\n",
                     iq_port_file.c_str());
        return 2;
      }
      const SampleRate rate = remote->wait_for_pusher();
      std::fprintf(stderr, "gateway: pusher connected at %.6g Msps\n",
                   rate / 1e6);
      source = std::move(remote);
    }

    if (control_cfg.has_value()) {
      auto loop = std::make_shared<control::ControlLoop>(
          control_cfg->loop, rc.windowed.decoder.rate_plan);
      {
        std::lock_guard<std::mutex> lock(control_mutex);
        control_loop = loop;
      }
      std::fprintf(stderr, "gateway: control plane on (policy=%s%s)\n",
                   loop->policy_name(), loop->frozen() ? ", frozen" : "");
    }
    // Feed every published frame to the tracker; step the loop in the
    // background only when the spec asks (period-ms). Either way a final
    // deterministic step after the run drains closes the last epoch and
    // broadcasts the plan before the stats digest, so a tail always sees
    // control → stats → bye.
    const auto control_attach =
        [&](runtime::FrameBus& bus) -> runtime::FrameBus::SubscriberId {
      if (!control_loop) return 0;
      const auto id = bus.subscribe([&](const runtime::FrameEvent& event) {
        control_loop->tracker().observe_frame(event);
      });
      if (control_cfg->period > 0.0) control_loop->start(control_cfg->period);
      return id;
    };
    const auto control_finish = [&](runtime::FrameBus& bus,
                                    runtime::FrameBus::SubscriberId id) {
      if (!control_loop) return;
      control_loop->stop();
      if (id != 0) bus.unsubscribe(id);
      const control::EpochPlan plan = control_loop->step();
      server.publish_control(control_loop->wire_state());
      std::fprintf(stderr,
                   "gateway: control epoch=%llu policy=%s tags=%zu "
                   "predicted=%.6g b/s\n",
                   static_cast<unsigned long long>(plan.epoch),
                   plan.policy.c_str(), plan.assignments.size(),
                   plan.predicted_goodput_bps);
    };

    runtime::RuntimeStats stats;
    core::DecodeResult decode;
    if (!shard_specs.empty()) {
      // Sharded decode: fan windows out to remote worker processes; the
      // merged result is bit-identical to the local windowed path.
      net::federation::ShardConfig shc;
      shc.windowed = rc.windowed;
      shc.name = "lfbs_gateway --shard";
      if (budget.has_value()) shc.budget = &*budget;
      for (const auto& spec : shard_specs) {
        net::federation::ShardWorkerEndpoint endpoint;
        if (!split_host_port(spec, endpoint.host, endpoint.port)) {
          std::fprintf(stderr, "error: --shard wants HOST:PORT, got '%s'\n",
                       spec.c_str());
          return 2;
        }
        shc.workers.push_back(endpoint);
      }
      net::federation::ShardedDecoder sharded(shc);
      server.attach(sharded.bus());
      const auto control_tap = control_attach(sharded.bus());
      if (wait_subscriber > 0.0 &&
          !server.wait_for_subscriber(wait_subscriber)) {
        std::fprintf(stderr,
                     "gateway: no subscriber within %.1fs, serving anyway\n",
                     wait_subscriber);
      }
      const auto result = sharded.run(*source);
      control_finish(sharded.bus(), control_tap);
      server.detach();
      decode = result.decode;
      stats.frames_published = result.stats.frames_published;
      stats.samples_in = result.stats.samples_in;
      stats.windows_decoded = result.stats.windows_decoded;
      stats.streams = result.stats.streams;
      stats.wall_seconds = result.stats.wall_seconds;
      stats.window_latency_p50_ms = result.stats.shard_latency_p50_ms;
      stats.window_latency_p99_ms = result.stats.shard_latency_p99_ms;
      std::fprintf(stderr,
                   "gateway: sharded %zu windows over %zu workers "
                   "(p99 %.2f ms)\n",
                   result.stats.windows_decoded, shc.workers.size(),
                   result.stats.shard_latency_p99_ms);
    } else {
      runtime::DecodeRuntime rt(rc);
      server.attach(rt.bus());
      const auto control_tap = control_attach(rt.bus());
      if (wait_subscriber > 0.0 &&
          !server.wait_for_subscriber(wait_subscriber)) {
        std::fprintf(stderr,
                     "gateway: no subscriber within %.1fs, serving anyway\n",
                     wait_subscriber);
      }
      const runtime::RuntimeResult run = rt.run(*source);
      control_finish(rt.bus(), control_tap);
      server.detach();
      decode = run.decode;
      stats = run.stats;
    }
    // Final digest first, then a drained Bye(end-of-stream): a tail can
    // check frames_received against frames_published from the stream.
    server.publish_stats(stats);
    server.shutdown(/*drain=*/true);

    const auto net_counters = server.counters();
    std::fprintf(
        stderr,
        "gateway: %zu frames published, %zu sent over %zu connections "
        "(%zu drops, %zu evictions), health %s%s\n",
        stats.frames_published, net_counters.frames_sent,
        net_counters.connects, net_counters.queue_drops,
        net_counters.evictions, runtime::to_string(stats.health),
        stats.stopped_early ? ", interrupted" : "");

    std::size_t crc_valid = 0;
    for (const auto& stream : decode.streams) {
      for (const auto& frame : stream.frames) {
        if (frame.valid()) ++crc_valid;
      }
    }
    exit_code = crc_valid > 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    exit_code = 2;
  }

  flush_telemetry();
  return shutdown_exit_code(exit_code);
}

// lfbs_soak: chaos soak of the network plane, all on loopback in one
// process. Every epoch runs the full distributed topology end to end:
//
//   shard worker pool (threads, real TCP)
//        ^ kShardAssign / kShardFrame
//   ShardedDecoder coordinator ── FrameBus ──> FrameServer A (origin 1)
//        FrameRelay (gateway 2) <─ subscribe ─┘
//             └─> FrameServer B ──> tail FrameClient
//
// and replays the same pre-built capture under a fresh epoch_index, so
// every published frame has a unique identity for exactly-once accounting.
// With --chaos SPEC the socket layer injects deterministic faults into
// every connect-side link (coordinator→worker, relay→A, tail→B); the run
// must then *heal* — shard failover, replay-ring partition recovery,
// full-jitter reconnect — or the attempt is counted failed and retried.
//
// Per successful attempt the harness asserts:
//   - closure: the tail's unique frame identities == the identities the
//     coordinator published (nothing lost, nothing invented);
//   - exactly-once: duplicates at the tail only ever come from replay
//     healing (zero without chaos), never from double publishes;
//   - bit-stability: the published frame count matches the serial
//     WindowedDecoder reference on the same capture.
// Across the run it asserts bounded memory (VmRSS may not grow more than
// --rss-limit-mb over its post-warmup baseline) and walks a health ladder
// (healthy → degraded on any failed attempt → failed past
// --max-consecutive-failures), printing every transition.
//
// With --overload the topology changes to the admission-control drill:
// one DecodeRuntime gateway under a global byte budget and backpressure
// gate, a 32-connection dial storm (each expecting a typed admission
// deny with a retry-after hint), 4 deliberately slow best-effort
// consumers, and 1 priority subscriber. Per epoch the drill asserts the
// priority subscriber saw every published frame (bit-identity to the
// serial reference), every denied dial got Bye(admission-denied) with a
// positive retry hint, the server's typed shed ledger closes exactly
// (enqueued == sent + drops + sheds + discarded), and the budget drains
// back to zero bytes; across the run RSS stays bounded as usual.
//
// Exit status: 0 soak completed healthy or degraded-but-recovered, 1 any
// soak assertion failed, 2 usage error. 130/143 after SIGINT/SIGTERM.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "channel/channel_model.h"
#include "common/rng.h"
#include "common/shutdown.h"
#include "core/windowed_decoder.h"
#include "net/chaos/chaos.h"
#include "net/federation/relay.h"
#include "net/federation/shard.h"
#include "net/federation/shard_worker.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "obs/events.h"
#include "obs/trace.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/frame_bus.h"
#include "runtime/runtime.h"
#include "runtime/sample_source.h"
#include "runtime/stats.h"
#include "tag/tag.h"

using namespace lfbs;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: lfbs_soak [--epochs N] [--tags N] [--duration-ms MS]\n"
      "                 [--workers N] [--chaos SPEC] [--replay N]\n"
      "                 [--seed N] [--rss-limit-mb N]\n"
      "                 [--worker-deadline S] [--max-consecutive-failures N]\n"
      "                 [--report-every N] [--trace-out PATH]\n"
      "                 [--overload] [--storm N] [--slow-consumers N]\n"
      "                 [--admitted N] [--budget-kb N]\n");
}

/// Current resident set in bytes, from /proc/self/status (0 if unreadable).
std::size_t rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(atoll(line.c_str() + 6)) * 1024;
    }
  }
  return 0;
}

/// The federation tests' capture shape: `tags` tags stream frames for
/// `duration` through the full channel model — a real multi-window decode.
signal::SampleBuffer make_capture(std::size_t num_tags, Seconds duration,
                                  std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = 40.0;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      frames.push_back(protocol::build_frame(rng.bits(96), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  return receiver.receive_epoch(timelines, duration, rng);
}

struct SoakOptions {
  std::size_t epochs = 50;
  std::size_t tags = 2;
  double duration_ms = 50.0;
  std::size_t workers = 2;
  std::string chaos_spec;
  std::size_t replay = 256;
  std::uint64_t seed = 11;
  std::size_t rss_limit_mb = 64;
  double worker_deadline = 5.0;
  std::size_t max_consecutive_failures = 20;
  std::size_t report_every = 10;
  std::string trace_out;
  // --overload drill shape.
  bool overload = false;
  std::size_t storm = 32;           ///< dial-storm connections per epoch
  std::size_t slow_consumers = 4;   ///< deliberately slow best-effort tails
  std::size_t admitted = 8;         ///< admission connection budget
  std::size_t budget_kb = 256;      ///< global queue/ring byte budget, KiB
};

struct AttemptOutcome {
  bool ok = false;
  std::string error;          ///< first failure cause, empty when ok
  std::size_t published = 0;  ///< frames the coordinator put on the bus
  std::size_t delivered = 0;  ///< unique identities that reached the tail
  std::size_t duplicates = 0; ///< replay-healed re-deliveries at the tail
  std::size_t workers_lost = 0;
  std::size_t windows_reassigned = 0;
  std::size_t tail_reconnects = 0;
};

/// One end-to-end epoch: coordinator → server A → relay → server B → tail.
AttemptOutcome run_attempt(const signal::SampleBuffer& capture,
                           const core::WindowedDecoderConfig& wc,
                           const std::vector<net::federation::ShardWorkerEndpoint>& pool,
                           std::uint64_t epoch_index,
                           const SoakOptions& opt) {
  AttemptOutcome out;

  net::federation::ShardConfig shc;
  shc.windowed = wc;
  shc.workers = pool;
  shc.name = "lfbs-soak-coordinator";
  shc.epoch_index = epoch_index;
  shc.worker_deadline = opt.worker_deadline;
  net::federation::ShardedDecoder sharded(shc);

  std::mutex published_mutex;
  std::set<std::uint64_t> published_keys;
  const auto sub = sharded.bus().subscribe([&](const runtime::FrameEvent& e) {
    std::lock_guard lock(published_mutex);
    published_keys.insert(runtime::frame_identity(e).key());
  });

  net::FrameServerConfig sa;
  sa.origin_id = 1;
  sa.replay_frames = opt.replay;
  net::FrameServer server_a(sa);
  server_a.attach(sharded.bus());

  net::FrameServerConfig sb;
  sb.origin_id = 2;
  sb.replay_frames = opt.replay;
  net::FrameServer server_b(sb);

  net::federation::RelayConfig rc;
  rc.gateway_id = 2;
  rc.name = "lfbs-soak-relay";
  rc.upstreams = {{"127.0.0.1", server_a.port()}};
  net::federation::FrameRelay relay(rc, server_b);

  // Tail: replay-healing, self-reconnecting, exactly-once bookkeeping.
  net::FrameClientConfig cc;
  cc.port = server_b.port();
  cc.name = "lfbs-soak-tail";
  cc.filter.replay_recent = true;
  cc.reconnect_on_evict = true;
  cc.reconnect_on_protocol_error = true;
  net::FrameClient tail(cc);
  std::mutex tail_mutex;
  std::set<std::uint64_t> tail_keys;
  std::size_t tail_duplicates = 0;
  std::string tail_error;
  std::thread tail_thread([&] {
    net::FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& e) {
      std::lock_guard lock(tail_mutex);
      if (!tail_keys.insert(runtime::frame_identity(e).key()).second) {
        ++tail_duplicates;
      }
    };
    try {
      tail.run(callbacks);
    } catch (const std::exception& e) {
      std::lock_guard lock(tail_mutex);
      tail_error = e.what();
    }
  });

  // Deterministic spin-up: tail on B, then the relay link on A, then decode.
  server_b.wait_for_subscriber(5.0);
  relay.start();
  server_a.wait_for_subscriber(5.0);

  std::string run_error;
  runtime::RuntimeStats stats;
  try {
    runtime::MemorySource source(capture, 1 << 14);
    const auto result = sharded.run(source);
    stats.frames_published = result.stats.frames_published;
    out.workers_lost = result.stats.workers_lost;
    out.windows_reassigned = result.stats.windows_reassigned;
  } catch (const std::exception& e) {
    run_error = e.what();
  }

  // Teardown in stream order so every hop sees a drained Bye.
  server_a.detach();
  server_a.publish_stats(stats);
  server_a.shutdown(/*drain=*/true);
  relay.join();
  relay.stop();
  runtime::RuntimeStats relay_stats;
  relay_stats.frames_published = relay.counters().relayed;
  server_b.publish_stats(relay_stats);
  server_b.shutdown(/*drain=*/true);
  // No tail.stop(): the drained shutdown guarantees a Bye is in flight, and
  // stopping early would race the tail out of its last queued frames. If
  // the tail instead died and is redialing, the closed listener bounds its
  // retries.
  tail_thread.join();
  sharded.bus().unsubscribe(sub);

  std::lock_guard lock(tail_mutex);
  out.published = published_keys.size();
  out.delivered = tail_keys.size();
  out.duplicates = tail_duplicates;
  out.tail_reconnects = tail.counters().reconnects;
  if (!run_error.empty()) {
    out.error = "coordinator: " + run_error;
  } else if (out.published == 0) {
    out.error = "decode published no frames";
  } else if (tail_keys != published_keys) {
    out.error = "closure: tail saw " + std::to_string(out.delivered) +
                " unique frames of " + std::to_string(out.published) +
                " published";
    if (!tail_error.empty()) out.error += " (tail: " + tail_error + ")";
  }
  out.ok = out.error.empty();
  return out;
}

struct OverloadOutcome {
  bool ok = false;
  std::string error;
  std::size_t published = 0;
  std::size_t priority_delivered = 0;  ///< unique identities, priority tail
  std::size_t storm_denied = 0;        ///< dials that got the typed deny
  std::size_t storm_admitted = 0;      ///< dials that got a subscription
  net::FrameServer::Counters server;
  std::size_t backpressure_waits = 0;
  std::size_t budget_peak = 0;
  std::size_t budget_leak = 0;  ///< bytes still charged after teardown
};

/// One overload epoch: DecodeRuntime gateway under budget + admission,
/// dial storm + slow best-effort consumers + one priority subscriber.
OverloadOutcome run_overload_attempt(const signal::SampleBuffer& capture,
                                     const core::WindowedDecoderConfig& wc,
                                     const SoakOptions& opt) {
  OverloadOutcome out;
  net::ResourceBudget budget(opt.budget_kb * 1024);
  runtime::BackpressureGate gate;

  std::mutex keys_mutex;
  std::set<std::uint64_t> published_keys;
  std::set<std::uint64_t> priority_keys;
  std::string priority_error;
  std::atomic<std::size_t> denied{0}, admitted{0};
  std::atomic<std::size_t> bad_denies{0};  ///< denies with no retry hint

  {
    net::FrameServerConfig sc;
    sc.origin_id = 1;
    sc.replay_frames = opt.replay;
    sc.admission.enabled = true;
    sc.admission.max_connections = opt.admitted;
    sc.admission.retry_after = 0.2;
    // Slow best-effort consumers hit this per-client byte quota first and
    // lose their oldest frames there; the global budget is the backstop.
    sc.admission.best_effort.max_queue_bytes = 16 * 1024;
    sc.budget = &budget;
    sc.backpressure = &gate;
    net::FrameServer server(sc);

    runtime::RuntimeConfig rc;
    rc.windowed = wc;
    rc.workers = 2;
    rc.backpressure = &gate;
    runtime::DecodeRuntime rt(rc);
    server.attach(rt.bus());
    const auto sub = rt.bus().subscribe([&](const runtime::FrameEvent& e) {
      std::lock_guard lock(keys_mutex);
      published_keys.insert(runtime::frame_identity(e).key());
    });

    // The priority subscriber: must end the epoch with every published
    // frame, no matter what the storm does.
    net::FrameClientConfig pc;
    pc.port = server.port();
    pc.name = "lfbs-soak-priority";
    pc.client_class = net::ClientClass::kPriority;
    net::FrameClient priority_tail(pc);
    std::thread priority_thread([&] {
      net::FrameClient::Callbacks callbacks;
      callbacks.on_frame = [&](const runtime::FrameEvent& e) {
        std::lock_guard lock(keys_mutex);
        priority_keys.insert(runtime::frame_identity(e).key());
      };
      try {
        priority_tail.run(callbacks);
      } catch (const std::exception& e) {
        std::lock_guard lock(keys_mutex);
        priority_error = e.what();
      }
    });

    // Slow best-effort consumers: a sleep per frame makes their queues the
    // shed targets. Whatever they lose is the policy working; only the
    // ledger has to account for it.
    std::vector<std::unique_ptr<net::FrameClient>> slow_tails;
    std::vector<std::thread> slow_threads;
    for (std::size_t i = 0; i < opt.slow_consumers; ++i) {
      net::FrameClientConfig cc;
      cc.port = server.port();
      cc.name = "lfbs-soak-slow-" + std::to_string(i);
      slow_tails.push_back(std::make_unique<net::FrameClient>(cc));
      net::FrameClient* tail = slow_tails.back().get();
      slow_threads.emplace_back([tail] {
        net::FrameClient::Callbacks callbacks;
        callbacks.on_frame = [](const runtime::FrameEvent&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        };
        try {
          tail->run(callbacks);
        } catch (const std::exception&) {
          // A slow tail losing its connection under overload is the
          // policy's business, not the drill's.
        }
      });
    }

    // Let every legitimate subscriber land before the storm competes for
    // the connection budget.
    const auto sub_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    const std::size_t want_subs = 1 + opt.slow_consumers;
    while (server.counters().subscribers < want_subs &&
           std::chrono::steady_clock::now() < sub_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // The dial storm: every connection either gets a typed deny with a
    // retry-after hint (and gives up: zero admission retries) or is
    // admitted and tails the stream to its end.
    std::vector<std::unique_ptr<net::FrameClient>> storm_clients;
    std::vector<std::thread> storm_threads;
    for (std::size_t i = 0; i < opt.storm; ++i) {
      net::FrameClientConfig cc;
      cc.port = server.port();
      cc.name = "lfbs-soak-storm-" + std::to_string(i);
      cc.max_admission_retries = 0;
      storm_clients.push_back(std::make_unique<net::FrameClient>(cc));
      net::FrameClient* client = storm_clients.back().get();
      storm_threads.emplace_back([client, &denied, &admitted, &bad_denies] {
        try {
          const net::Bye bye = client->run({});
          if (bye.reason == net::ByeReason::kAdmissionDenied) {
            denied.fetch_add(1, std::memory_order_relaxed);
            if (!(bye.retry_after > 0.0)) {
              bad_denies.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            admitted.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          // Dial storms racing a draining listener can lose a connection
          // without a Bye; that dial is neither denied nor admitted.
        }
      });
    }

    // Decode under fire.
    std::string run_error;
    runtime::RuntimeStats stats;
    try {
      runtime::MemorySource source(capture, 1 << 14);
      const runtime::RuntimeResult run = rt.run(source);
      stats = run.stats;
    } catch (const std::exception& e) {
      run_error = e.what();
    }
    out.backpressure_waits = stats.backpressure_waits;

    server.detach();
    rt.bus().unsubscribe(sub);
    server.publish_stats(stats);
    server.shutdown(/*drain=*/true);
    priority_thread.join();
    for (auto& thread : slow_threads) thread.join();
    for (auto& thread : storm_threads) thread.join();
    out.server = server.counters();
    if (!run_error.empty()) out.error = "runtime: " + run_error;
  }  // server destroyed: every queued byte and the ring must be released

  out.published = published_keys.size();
  out.priority_delivered = priority_keys.size();
  out.storm_denied = denied.load();
  out.storm_admitted = admitted.load();
  out.budget_peak = budget.peak();
  out.budget_leak = budget.used();

  const auto& c = out.server;
  const std::size_t accounted = c.frames_sent + c.queue_drops +
                                c.budget_sheds + c.frames_discarded;
  if (!out.error.empty()) {
    // keep the runtime error
  } else if (out.published == 0) {
    out.error = "decode published no frames";
  } else if (!priority_error.empty()) {
    out.error = "priority tail: " + priority_error;
  } else if (priority_keys != published_keys) {
    out.error = "priority tail saw " +
                std::to_string(out.priority_delivered) + " unique frames of " +
                std::to_string(out.published) + " published";
  } else if (out.storm_denied == 0) {
    out.error = "dial storm produced no admission denies";
  } else if (bad_denies.load() > 0) {
    out.error = std::to_string(bad_denies.load()) +
                " denies arrived without a retry-after hint";
  } else if (out.storm_denied != c.admission_denies) {
    out.error = "deny accounting: server counted " +
                std::to_string(c.admission_denies) + ", storm received " +
                std::to_string(out.storm_denied);
  } else if (c.frames_enqueued != accounted) {
    out.error = "shed ledger does not close: enqueued " +
                std::to_string(c.frames_enqueued) + " != sent " +
                std::to_string(c.frames_sent) + " + drops " +
                std::to_string(c.queue_drops) + " + sheds " +
                std::to_string(c.budget_sheds) + " + discarded " +
                std::to_string(c.frames_discarded);
  } else if (out.budget_leak != 0) {
    out.error = "budget leaked " + std::to_string(out.budget_leak) +
                " bytes after teardown";
  }
  out.ok = out.error.empty();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--epochs" && i + 1 < argc) {
      opt.epochs = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--tags" && i + 1 < argc) {
      opt.tags = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--duration-ms" && i + 1 < argc) {
      opt.duration_ms = atof(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      opt.workers = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--chaos" && i + 1 < argc) {
      opt.chaos_spec = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      opt.replay = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(atoll(argv[++i]));
    } else if (arg == "--rss-limit-mb" && i + 1 < argc) {
      opt.rss_limit_mb = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--worker-deadline" && i + 1 < argc) {
      opt.worker_deadline = atof(argv[++i]);
    } else if (arg == "--max-consecutive-failures" && i + 1 < argc) {
      opt.max_consecutive_failures =
          static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--report-every" && i + 1 < argc) {
      opt.report_every = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--trace-out" && i + 1 < argc) {
      opt.trace_out = argv[++i];
    } else if (arg == "--overload") {
      opt.overload = true;
    } else if (arg == "--storm" && i + 1 < argc) {
      opt.storm = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--slow-consumers" && i + 1 < argc) {
      opt.slow_consumers = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--admitted" && i + 1 < argc) {
      opt.admitted = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--budget-kb" && i + 1 < argc) {
      opt.budget_kb = static_cast<std::size_t>(atoi(argv[++i]));
    } else {
      usage();
      return 2;
    }
  }
  if (opt.overload && (opt.admitted == 0 || opt.budget_kb == 0)) {
    usage();
    return 2;
  }
  if (opt.epochs == 0 || opt.workers == 0) {
    usage();
    return 2;
  }

  std::unique_ptr<obs::JsonlWriter> telemetry_writer;
  std::unique_ptr<obs::EventLog> event_log;
  if (!opt.trace_out.empty()) {
    telemetry_writer = std::make_unique<obs::JsonlWriter>(opt.trace_out);
    if (!telemetry_writer->ok()) {
      std::fprintf(stderr, "error: cannot open --trace-out %s\n",
                   opt.trace_out.c_str());
      return 2;
    }
    event_log = std::make_unique<obs::EventLog>(*telemetry_writer);
    obs::set_event_log(event_log.get());
  }

  std::unique_ptr<net::ChaosEngine> chaos_engine;
  std::optional<net::ChaosScope> chaos_scope;
  if (!opt.chaos_spec.empty()) {
    try {
      chaos_engine = std::make_unique<net::ChaosEngine>(
          net::parse_chaos_config(opt.chaos_spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad --chaos spec: %s\n", e.what());
      return 2;
    }
    chaos_scope.emplace(*chaos_engine);
  }

  // --- capture + serial reference (once; every epoch replays it) ---------
  const signal::SampleBuffer capture =
      make_capture(opt.tags, opt.duration_ms * 1e-3, opt.seed);
  core::WindowedDecoderConfig wc;
  const core::DecodeResult reference =
      core::WindowedDecoder(wc).decode(capture);
  std::size_t reference_frames = 0;
  for (const auto& stream : reference.streams) {
    reference_frames += stream.frames.size();
  }
  if (reference_frames == 0) {
    std::fprintf(stderr, "error: soak capture decodes to no frames "
                         "(raise --tags / --duration-ms)\n");
    return 2;
  }
  std::fprintf(stderr,
               "soak: capture %.1f ms, %zu tags, %zu reference frames, "
               "%zu workers, chaos %s\n",
               opt.duration_ms, opt.tags, reference_frames, opt.workers,
               opt.chaos_spec.empty() ? "off" : opt.chaos_spec.c_str());

  // --- overload drill: its own topology and epoch loop --------------------
  if (opt.overload) {
    std::fprintf(stderr,
                 "soak: overload drill — %zu-dial storm, %zu slow consumers, "
                 "%zu admitted, %zu KiB budget\n",
                 opt.storm, opt.slow_consumers, opt.admitted, opt.budget_kb);
    install_shutdown_handlers();
    using runtime::HealthState;
    HealthState health = HealthState::kHealthy;
    const auto transition = [&](HealthState to, const std::string& why) {
      if (to <= health) return;
      std::fprintf(stderr, "soak: health %s -> %s (%s)\n",
                   runtime::to_string(health), runtime::to_string(to),
                   why.c_str());
      if (obs::EventLog* log = obs::event_log()) {
        log->emit("soak", {obs::Field::str("action", "health"),
                           obs::Field::str("to", runtime::to_string(to)),
                           obs::Field::str("why", why)});
      }
      health = to;
    };

    std::size_t completed = 0, attempts = 0, consecutive = 0;
    std::size_t denies_total = 0, quota_sheds_total = 0;
    std::size_t budget_sheds_total = 0, refusals_total = 0;
    std::size_t ring_sheds_total = 0, drops_total = 0;
    std::size_t backpressure_total = 0, peak_bytes_max = 0;
    std::size_t rss_baseline = 0;
    bool interrupted = false;
    while (completed < opt.epochs) {
      if (shutdown_flag().load()) {
        interrupted = true;
        break;
      }
      ++attempts;
      const OverloadOutcome outcome =
          run_overload_attempt(capture, wc, opt);
      denies_total += outcome.storm_denied;
      quota_sheds_total += outcome.server.quota_sheds;
      budget_sheds_total += outcome.server.budget_sheds;
      refusals_total += outcome.server.budget_refusals;
      ring_sheds_total += outcome.server.ring_sheds;
      drops_total += outcome.server.queue_drops;
      backpressure_total += outcome.backpressure_waits;
      peak_bytes_max = std::max(peak_bytes_max, outcome.budget_peak);
      if (outcome.ok && outcome.published != reference_frames) {
        transition(HealthState::kFailed,
                   "overloaded gateway published " +
                       std::to_string(outcome.published) +
                       " frames, serial reference has " +
                       std::to_string(reference_frames));
        break;
      }
      if (outcome.ok) {
        ++completed;
        consecutive = 0;
        if (rss_baseline == 0) rss_baseline = rss_bytes();
        if (opt.report_every > 0 && completed % opt.report_every == 0) {
          std::fprintf(
              stderr,
              "soak: %zu/%zu overload epochs, %zu denies, %zu drops, "
              "%zu budget sheds, rss %.1f MB\n",
              completed, opt.epochs, denies_total, drops_total,
              budget_sheds_total, rss_bytes() / 1048576.0);
        }
      } else {
        ++consecutive;
        transition(HealthState::kDegraded,
                   "overload attempt " + std::to_string(attempts) +
                       " failed: " + outcome.error);
        if (consecutive > opt.max_consecutive_failures) {
          transition(HealthState::kFailed,
                     std::to_string(consecutive) +
                         " consecutive failed attempts");
          break;
        }
      }
    }

    const std::size_t rss_final = rss_bytes();
    if (rss_baseline > 0 &&
        rss_final > rss_baseline + opt.rss_limit_mb * 1048576) {
      transition(HealthState::kFailed,
                 "rss grew from " + std::to_string(rss_baseline / 1048576) +
                     " MB to " + std::to_string(rss_final / 1048576) + " MB");
    }
    if (!interrupted && completed < opt.epochs) {
      transition(HealthState::kFailed, "soak aborted before all epochs ran");
    }
    std::fprintf(
        stderr,
        "soak: %zu/%zu overload epochs over %zu attempts — %zu typed "
        "denies, %zu quota sheds, %zu drops, %zu budget sheds, %zu "
        "refusals, %zu ring sheds, %zu backpressure waits, peak budget "
        "%.1f KiB, rss %.1f -> %.1f MB, health %s\n",
        completed, opt.epochs, attempts, denies_total, quota_sheds_total,
        drops_total, budget_sheds_total, refusals_total, ring_sheds_total,
        backpressure_total, peak_bytes_max / 1024.0,
        rss_baseline / 1048576.0, rss_final / 1048576.0,
        runtime::to_string(health));
    if (telemetry_writer) telemetry_writer->flush();
    obs::set_event_log(nullptr);
    return shutdown_exit_code(health == HealthState::kFailed ? 1 : 0);
  }

  // --- persistent worker pool (threads; sessions come and go) ------------
  std::atomic<bool> pool_stop{false};
  std::vector<std::unique_ptr<net::federation::ShardWorker>> workers;
  std::vector<std::thread> worker_threads;
  std::vector<net::federation::ShardWorkerEndpoint> pool;
  for (std::size_t i = 0; i < opt.workers; ++i) {
    workers.push_back(std::make_unique<net::federation::ShardWorker>(
        net::federation::ShardWorkerConfig{
            "127.0.0.1", 0, "soak-worker-" + std::to_string(i)}));
    pool.push_back({"127.0.0.1", workers.back()->port()});
  }
  for (auto& worker : workers) {
    worker_threads.emplace_back([&pool_stop, &worker] {
      while (!pool_stop.load(std::memory_order_relaxed)) {
        try {
          worker->serve();  // one coordinator session (or a chaos casualty)
        } catch (const std::exception&) {
          // A chaos'd coordinator link can die mid-session; the worker is
          // stateless, so just go back to accepting.
        }
      }
    });
  }

  install_shutdown_handlers();

  // --- the epoch loop ----------------------------------------------------
  using runtime::HealthState;
  HealthState health = HealthState::kHealthy;
  const auto transition = [&](HealthState to, const std::string& why) {
    if (to <= health) return;
    std::fprintf(stderr, "soak: health %s -> %s (%s)\n",
                 runtime::to_string(health), runtime::to_string(to),
                 why.c_str());
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("soak", {obs::Field::str("action", "health"),
                         obs::Field::str("to", runtime::to_string(to)),
                         obs::Field::str("why", why)});
    }
    health = to;
  };

  std::size_t completed = 0, attempts = 0, failures = 0, consecutive = 0;
  std::size_t delivered_total = 0, duplicates_total = 0;
  std::size_t workers_lost_total = 0, reassigned_total = 0;
  std::size_t rss_baseline = 0;
  bool interrupted = false;
  while (completed < opt.epochs) {
    if (shutdown_flag().load()) {
      interrupted = true;
      break;
    }
    const std::uint64_t epoch_index = attempts++;  // monotonic per attempt
    const AttemptOutcome outcome =
        run_attempt(capture, wc, pool, epoch_index, opt);
    delivered_total += outcome.delivered;
    duplicates_total += outcome.duplicates;
    workers_lost_total += outcome.workers_lost;
    reassigned_total += outcome.windows_reassigned;
    if (outcome.ok && outcome.published != reference_frames) {
      // Sharded + relayed output must stay pinned to the serial reference.
      transition(HealthState::kFailed,
                 "epoch " + std::to_string(epoch_index) + " published " +
                     std::to_string(outcome.published) + " frames, serial "
                     "reference has " + std::to_string(reference_frames));
      break;
    }
    if (outcome.ok) {
      ++completed;
      consecutive = 0;
      if (rss_baseline == 0) rss_baseline = rss_bytes();  // post-warmup
      if (opt.report_every > 0 && completed % opt.report_every == 0) {
        std::fprintf(stderr,
                     "soak: %zu/%zu epochs, %zu attempts, %zu dup replays, "
                     "%zu workers lost, %zu windows reassigned, rss %.1f MB\n",
                     completed, opt.epochs, attempts, duplicates_total,
                     workers_lost_total, reassigned_total,
                     rss_bytes() / 1048576.0);
      }
    } else {
      ++failures;
      ++consecutive;
      transition(HealthState::kDegraded,
                 "attempt " + std::to_string(epoch_index) + " failed: " +
                     outcome.error);
      if (consecutive > opt.max_consecutive_failures) {
        transition(HealthState::kFailed,
                   std::to_string(consecutive) +
                       " consecutive failed attempts");
        break;
      }
    }
  }

  pool_stop.store(true);
  for (auto& worker : workers) worker->stop();
  for (auto& thread : worker_threads) thread.join();

  // --- final assertions + summary ----------------------------------------
  const std::size_t rss_final = rss_bytes();
  if (rss_baseline > 0 &&
      rss_final > rss_baseline + opt.rss_limit_mb * 1048576) {
    transition(HealthState::kFailed,
               "rss grew from " + std::to_string(rss_baseline / 1048576) +
                   " MB to " + std::to_string(rss_final / 1048576) + " MB");
  }
  if (opt.chaos_spec.empty() && duplicates_total > 0) {
    // Without chaos nothing reconnects, so nothing may ever replay.
    transition(HealthState::kFailed,
               std::to_string(duplicates_total) +
                   " duplicate deliveries on a fault-free run");
  }
  if (!interrupted && completed < opt.epochs) {
    transition(HealthState::kFailed, "soak aborted before all epochs ran");
  }

  std::fprintf(stderr,
               "soak: %zu/%zu epochs over %zu attempts (%zu failed), "
               "%zu frames delivered exactly-once, %zu dup replays healed, "
               "%zu workers lost, %zu windows reassigned, "
               "rss %.1f -> %.1f MB, health %s\n",
               completed, opt.epochs, attempts, failures, delivered_total,
               duplicates_total, workers_lost_total, reassigned_total,
               rss_baseline / 1048576.0, rss_final / 1048576.0,
               runtime::to_string(health));
  if (chaos_engine) {
    const net::ChaosStats cs = chaos_engine->stats();
    std::fprintf(stderr,
                 "soak: chaos injected %llu faults (%llu refused, %llu "
                 "resets, %llu stalls, %llu partitions, %llu truncations, "
                 "%llu corruptions, %llu delays) across %llu sockets\n",
                 static_cast<unsigned long long>(cs.faults()),
                 static_cast<unsigned long long>(cs.connects_refused),
                 static_cast<unsigned long long>(cs.resets),
                 static_cast<unsigned long long>(cs.stalls),
                 static_cast<unsigned long long>(cs.partitions),
                 static_cast<unsigned long long>(cs.truncations),
                 static_cast<unsigned long long>(cs.corruptions),
                 static_cast<unsigned long long>(cs.delays),
                 static_cast<unsigned long long>(cs.fds_tracked));
  }

  if (telemetry_writer) telemetry_writer->flush();
  obs::set_event_log(nullptr);
  return shutdown_exit_code(health == HealthState::kFailed ? 1 : 0);
}

// Tests for src/protocol: CRCs, framing, rate plans, rate control, and
// identification sessions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "protocol/crc.h"
#include "protocol/epoch.h"
#include "protocol/frame.h"
#include "protocol/identification.h"
#include "protocol/rate_control.h"
#include "protocol/reliability.h"

namespace lfbs::protocol {
namespace {

TEST(Crc5, DetectsSingleBitErrors) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto payload = rng.bits(97);
    auto framed = append_crc5(payload);
    ASSERT_TRUE(check_crc5(framed));
    const std::size_t flip = rng.uniform_u64(framed.size());
    framed[flip] = !framed[flip];
    EXPECT_FALSE(check_crc5(framed)) << "missed flip at " << flip;
  }
}

TEST(Crc5, KnownRegisterBehaviour) {
  // All-zero input leaves the preset shifted through: deterministic value.
  const std::vector<bool> zeros(8, false);
  const auto a = crc5_epc(zeros);
  const auto b = crc5_epc(zeros);
  EXPECT_EQ(a, b);
  EXPECT_LT(a, 32);  // 5 bits
  // Different inputs give different CRCs (almost surely for these two).
  std::vector<bool> ones(8, true);
  EXPECT_NE(crc5_epc(ones), a);
}

TEST(Crc16, DetectsBurstErrors) {
  Rng rng(2);
  const auto payload = rng.bits(97);
  auto framed = append_crc16(payload);
  ASSERT_TRUE(check_crc16(framed));
  // A 5-bit burst anywhere must be caught (CRC-16 guarantees bursts <= 16).
  for (std::size_t start = 0; start + 5 < framed.size(); start += 7) {
    auto corrupted = framed;
    for (std::size_t i = start; i < start + 5; ++i) {
      corrupted[i] = !corrupted[i];
    }
    EXPECT_FALSE(check_crc16(corrupted));
  }
}

TEST(Crc16, TooShortInputFails) {
  EXPECT_FALSE(check_crc16(std::vector<bool>(10, true)));
  EXPECT_FALSE(check_crc5(std::vector<bool>(3, true)));
}

TEST(Frame, RoundTrip) {
  Rng rng(3);
  const FrameConfig cfg;  // 96-bit payload, CRC-16
  const auto payload = rng.bits(cfg.payload_bits);
  const auto bits = build_frame(payload, cfg);
  EXPECT_EQ(bits.size(), cfg.frame_bits());
  EXPECT_TRUE(bits.front());  // anchor
  const ParsedFrame parsed = parse_frame(bits, cfg);
  EXPECT_TRUE(parsed.valid());
  EXPECT_EQ(parsed.payload, payload);
}

TEST(Frame, Crc5Variant) {
  Rng rng(4);
  FrameConfig cfg;
  cfg.crc = CrcKind::kCrc5;
  EXPECT_EQ(cfg.frame_bits(), 1u + 96u + 5u);
  const auto payload = rng.bits(96);
  const auto bits = build_frame(payload, cfg);
  EXPECT_TRUE(parse_frame(bits, cfg).valid());
}

TEST(Frame, CorruptionFlagsNotThrows) {
  Rng rng(5);
  const FrameConfig cfg;
  auto bits = build_frame(rng.bits(cfg.payload_bits), cfg);
  bits[0] = false;  // break the anchor
  const ParsedFrame no_anchor = parse_frame(bits, cfg);
  EXPECT_FALSE(no_anchor.anchor_ok);
  bits[0] = true;
  bits[50] = !bits[50];  // break the payload
  const ParsedFrame bad_crc = parse_frame(bits, cfg);
  EXPECT_TRUE(bad_crc.anchor_ok);
  EXPECT_FALSE(bad_crc.crc_ok);
}

TEST(Frame, WrongLengthIsInvalid) {
  const FrameConfig cfg;
  EXPECT_FALSE(parse_frame(std::vector<bool>(5, true), cfg).valid());
}

TEST(Frame, ParseStreamSplitsConsecutiveFrames) {
  Rng rng(6);
  const FrameConfig cfg;
  const auto p1 = rng.bits(cfg.payload_bits);
  const auto p2 = rng.bits(cfg.payload_bits);
  auto stream = build_frame(p1, cfg);
  const auto f2 = build_frame(p2, cfg);
  stream.insert(stream.end(), f2.begin(), f2.end());
  stream.push_back(true);  // trailing partial garbage
  const auto frames = parse_stream(stream, cfg);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].payload, p2);
  EXPECT_TRUE(frames[0].valid() && frames[1].valid());
}

TEST(RatePlan, PaperRatesAllDivideMax) {
  const RatePlan plan = RatePlan::paper_rates();
  const BitRate max = plan.max();
  EXPECT_DOUBLE_EQ(max, 100.0 * kKbps);
  EXPECT_DOUBLE_EQ(plan.min(), 0.5 * kKbps);
  for (BitRate r : plan.rates) {
    const double m = max / r;
    EXPECT_NEAR(m, std::round(m), 1e-9) << r;
  }
}

TEST(RatePlan, SnapPeriodPicksNearestRate) {
  const RatePlan plan = RatePlan::paper_rates();
  EXPECT_DOUBLE_EQ(plan.snap_period(1.0 / (100.0 * kKbps)), 100.0 * kKbps);
  EXPECT_DOUBLE_EQ(plan.snap_period(1.05e-4), 10.0 * kKbps);
  EXPECT_DOUBLE_EQ(plan.snap_period(1.0), 0.5 * kKbps);  // slower than all
}

TEST(RatePlan, ValidityTolerance) {
  const RatePlan plan = RatePlan::paper_rates();
  EXPECT_TRUE(plan.is_valid(100.0 * kKbps));
  EXPECT_TRUE(plan.is_valid(100.0 * kKbps * (1.0 + 1e-9)));
  EXPECT_FALSE(plan.is_valid(30.0 * kKbps));
}

TEST(RateController, LowersOnHeavyLoss) {
  RateController rc(RatePlan::paper_rates(), 100.0 * kKbps);
  const auto cmd = rc.on_epoch(100, 60);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(*cmd, 50.0 * kKbps);
  EXPECT_DOUBLE_EQ(rc.current_max(), 50.0 * kKbps);
}

TEST(RateController, RaisesAfterPatienceCleanEpochs) {
  RateController rc(RatePlan::paper_rates(), 50.0 * kKbps);
  EXPECT_FALSE(rc.on_epoch(100, 0).has_value());
  EXPECT_FALSE(rc.on_epoch(100, 0).has_value());
  const auto cmd = rc.on_epoch(100, 0);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(*cmd, 100.0 * kKbps);
}

TEST(RateController, ModerateLossHoldsSteady) {
  RateController rc(RatePlan::paper_rates(), 50.0 * kKbps);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rc.on_epoch(100, 10).has_value());
  }
  EXPECT_DOUBLE_EQ(rc.current_max(), 50.0 * kKbps);
}

TEST(RateController, NeverLeavesThePlan) {
  RateController rc(RatePlan::paper_rates(), 0.5 * kKbps);
  EXPECT_FALSE(rc.on_epoch(10, 10).has_value());  // already at the floor
  EXPECT_DOUBLE_EQ(rc.current_max(), 0.5 * kKbps);
}

TEST(RateController, StepDownLowersOneNotchAndStopsAtFloor) {
  RateController rc(RatePlan::paper_rates(), 100.0 * kKbps);
  const auto cmd = rc.step_down();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_DOUBLE_EQ(*cmd, 50.0 * kKbps);
  EXPECT_DOUBLE_EQ(rc.current_max(), 50.0 * kKbps);
  // Walk all the way down; at the slowest rate step_down is a no-op.
  while (rc.step_down().has_value()) {
  }
  EXPECT_DOUBLE_EQ(rc.current_max(), 0.5 * kKbps);
  EXPECT_FALSE(rc.step_down().has_value());
}

TEST(RateController, StepDownResetsRaisePatience) {
  RateController rc(RatePlan::paper_rates(), 50.0 * kKbps);
  EXPECT_FALSE(rc.on_epoch(100, 0).has_value());
  EXPECT_FALSE(rc.on_epoch(100, 0).has_value());
  // One clean epoch short of raising; a step_down must restart the count
  // (from the new, lower rate).
  ASSERT_TRUE(rc.step_down().has_value());
  EXPECT_FALSE(rc.on_epoch(100, 0).has_value());
  EXPECT_FALSE(rc.on_epoch(100, 0).has_value());
  const auto raise = rc.on_epoch(100, 0);
  ASSERT_TRUE(raise.has_value());
  EXPECT_DOUBLE_EQ(*raise, 50.0 * kKbps);
}

TEST(Identification, RandomEpcsAreUniqueAnd96Bits) {
  Rng rng(7);
  const auto ids = random_epcs(32, rng);
  EXPECT_EQ(ids.size(), 32u);
  for (const auto& id : ids) EXPECT_EQ(id.size(), 96u);
}

TEST(Identification, SessionTracksProgress) {
  Rng rng(8);
  const auto ids = random_epcs(4, rng);
  IdentificationSession session(ids);
  EXPECT_FALSE(session.complete());
  session.record_round({ids[0], ids[1], ids[0]}, 1e-3);
  EXPECT_EQ(session.identified_count(), 2u);
  session.record_round({ids[2], ids[3]}, 1e-3);
  EXPECT_TRUE(session.complete());
  EXPECT_NEAR(session.elapsed(), 2e-3, 1e-12);
  EXPECT_EQ(session.rounds(), 2u);
}

TEST(Identification, PhantomIdsIgnored) {
  Rng rng(9);
  const auto ids = random_epcs(2, rng);
  IdentificationSession session(ids);
  session.record_round({rng.bits(96)}, 1e-3);  // garbage decode
  EXPECT_EQ(session.identified_count(), 0u);
}

TEST(ReliableTransfer, DeliversOnConfirmation) {
  Rng rng(10);
  ReliableTransfer link(2);
  const auto p0 = rng.bits(96);
  const auto p1 = rng.bits(96);
  link.enqueue(0, p0);
  link.enqueue(1, p1);
  EXPECT_EQ(link.pending(), 2u);
  const auto on_air = link.epoch_payloads(1);
  ASSERT_EQ(on_air.size(), 2u);
  EXPECT_EQ(on_air[0][0], p0);
  EXPECT_EQ(link.on_epoch_decoded({p0}), 1u);
  EXPECT_EQ(link.pending(), 1u);
  EXPECT_EQ(link.delivered(), 1u);
}

TEST(ReliableTransfer, RetransmitsUntilConfirmed) {
  Rng rng(11);
  ReliableTransfer link(1);
  const auto p = rng.bits(96);
  link.enqueue(0, p);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto on_air = link.epoch_payloads(1);
    ASSERT_EQ(on_air[0].size(), 1u);   // still offered
    link.on_epoch_decoded({});         // lost
  }
  link.epoch_payloads(1);
  link.on_epoch_decoded({p});
  EXPECT_EQ(link.delivered(), 1u);
  // Latency histogram records the 4th attempt.
  ASSERT_GE(link.latency_histogram().size(), 5u);
  EXPECT_EQ(link.latency_histogram()[4], 1u);
}

TEST(ReliableTransfer, AbandonsAfterMaxAttempts) {
  Rng rng(12);
  ReliableTransfer::Config cfg;
  cfg.max_attempts = 2;
  ReliableTransfer link(1, cfg);
  link.enqueue(0, rng.bits(96));
  link.epoch_payloads(1);
  link.on_epoch_decoded({});
  EXPECT_EQ(link.pending(), 1u);
  link.epoch_payloads(1);
  link.on_epoch_decoded({});
  EXPECT_EQ(link.pending(), 0u);
  EXPECT_EQ(link.abandoned(), 1u);
}

TEST(ReliableTransfer, OnlyInFlightFramesAge) {
  Rng rng(13);
  ReliableTransfer::Config cfg;
  cfg.max_attempts = 1;
  ReliableTransfer link(1, cfg);
  link.enqueue(0, rng.bits(96));
  link.enqueue(0, rng.bits(96));
  link.epoch_payloads(1);  // only the head frame goes on the air
  link.on_epoch_decoded({});
  // Head frame abandoned (1 attempt allowed); queued frame untouched.
  EXPECT_EQ(link.abandoned(), 1u);
  EXPECT_EQ(link.pending(), 1u);
}

TEST(ReliableTransfer, RetryForeverDoesNotStarveFreshFrames) {
  // Regression: with max_attempts = 0 and head-of-line selection, one
  // payload the reader can never decode occupied the single transmit slot
  // every epoch and the frames behind it never aired — pending() stayed
  // flat forever. Fewest-attempts-first selection must keep the queue
  // draining around the stuck frame.
  Rng rng(14);
  ReliableTransfer::Config cfg;
  cfg.max_attempts = 0;  // retry forever
  cfg.stuck_threshold = 4;
  ReliableTransfer link(1, cfg);
  const auto poison = rng.bits(96);  // reader never confirms this one
  link.enqueue(0, poison);
  const std::vector<std::vector<bool>> fresh = {rng.bits(96), rng.bits(96),
                                                rng.bits(96)};
  for (const auto& p : fresh) link.enqueue(0, p);

  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto on_air = link.epoch_payloads(1);
    ASSERT_EQ(on_air[0].size(), 1u);
    // The reader decodes everything except the poison payload.
    if (on_air[0][0] != poison) {
      link.on_epoch_decoded({on_air[0][0]});
    } else {
      link.on_epoch_decoded({});
    }
  }
  // All fresh frames delivered despite the undecodable one retrying
  // forever; the poison frame is still pending, never abandoned.
  EXPECT_EQ(link.delivered(), fresh.size());
  EXPECT_EQ(link.pending(), 1u);
  EXPECT_EQ(link.abandoned(), 0u);
  // With 10 epochs and 3 delivered, the poison frame failed 7 times —
  // visible in the stuck-frame stats.
  EXPECT_EQ(link.max_attempts_pending(), 7u);
  EXPECT_EQ(link.stuck(), 1u);
}

TEST(ReliableTransfer, DuplicatePayloadsAcrossTags) {
  ReliableTransfer link(2);
  const std::vector<bool> same(96, true);
  link.enqueue(0, same);
  link.enqueue(1, same);
  link.epoch_payloads(1);
  // One confirmation delivers exactly one of the two copies.
  EXPECT_EQ(link.on_epoch_decoded({same}), 1u);
  EXPECT_EQ(link.pending(), 1u);
}

}  // namespace
}  // namespace lfbs::protocol

// Tests for the small linear-algebra kit, OMP, and the generic Viterbi.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dsp/linalg.h"
#include "dsp/omp.h"
#include "dsp/viterbi.h"

namespace lfbs::dsp {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  const Matrix id = Matrix::identity(3);
  Matrix a(3, 3);
  a.at(0, 1) = {2.0, 1.0};
  a.at(2, 0) = {-1.0, 0.0};
  const Matrix prod = id * a;
  EXPECT_EQ(prod.at(0, 1), a.at(0, 1));
  EXPECT_EQ(prod.at(2, 0), a.at(2, 0));
}

TEST(Matrix, TransposeAndHermitian) {
  Matrix a(2, 3);
  a.at(0, 2) = {1.0, 2.0};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.at(2, 0), (Complex{1.0, 2.0}));
  const Matrix h = a.hermitian();
  EXPECT_EQ(h.at(2, 0), (Complex{1.0, -2.0}));
}

TEST(Matrix, VectorMultiply) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const std::vector<Complex> x = {{1.0, 0.0}, {1.0, 0.0}};
  const auto y = a * std::span<const Complex>(x);
  EXPECT_NEAR(y[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(y[1].real(), 7.0, 1e-12);
}

TEST(Solve, SolvesComplexSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = {1.0, 1.0};
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 0.5;
  a.at(1, 1) = {0.0, -1.0};
  const std::vector<Complex> x_true = {{1.0, -2.0}, {0.5, 0.25}};
  const auto b = a * std::span<const Complex>(x_true);
  const auto x = solve(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(std::abs(x[0] - x_true[0]), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(x[1] - x_true[1]), 0.0, 1e-9);
}

TEST(Solve, SingularReturnsEmpty) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;  // row 2 = 2 * row 1
  const std::vector<Complex> b = {1.0, 2.0};
  EXPECT_TRUE(solve(a, b).empty());
}

TEST(Solve, NeedsPivoting) {
  // Zero on the initial pivot position requires row exchange.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const std::vector<Complex> b = {3.0, 5.0};
  const auto x = solve(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0].real(), 5.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 3.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedRecovery) {
  Rng rng(3);
  Matrix a(20, 3);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a.at(r, c) = {rng.gaussian(), rng.gaussian()};
    }
  }
  const std::vector<Complex> x_true = {{1, 0}, {0, -1}, {2, 2}};
  auto b = a * std::span<const Complex>(x_true);
  for (auto& v : b) v += Complex{rng.gaussian(0, 1e-6), rng.gaussian(0, 1e-6)};
  const auto x = least_squares(a, b);
  ASSERT_EQ(x.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-4);
  }
}

TEST(LeastSquares, RidgeShrinks) {
  Matrix a = Matrix::identity(2);
  const std::vector<Complex> b = {10.0, 10.0};
  const auto plain = least_squares(a, b, 0.0);
  const auto ridged = least_squares(a, b, 1.0);
  EXPECT_NEAR(plain[0].real(), 10.0, 1e-9);
  EXPECT_NEAR(ridged[0].real(), 5.0, 1e-9);
}

TEST(ResidualNorm, ZeroForExactSolution) {
  Matrix a = Matrix::identity(3);
  const std::vector<Complex> x = {1.0, 2.0, 3.0};
  EXPECT_NEAR(residual_norm(a, x, x), 0.0, 1e-12);
  const std::vector<Complex> b = {1.0, 2.0, 4.0};
  EXPECT_NEAR(residual_norm(a, x, b), 1.0, 1e-12);
}

TEST(Omp, RecoversSparseSupport) {
  Rng rng(17);
  const std::size_t m = 24, n = 12;
  Matrix a(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a.at(r, c) = {rng.gaussian(), rng.gaussian()};
    }
  }
  std::vector<Complex> x_true(n);
  x_true[2] = {1.0, 0.5};
  x_true[7] = {-0.8, 0.3};
  auto y = a * std::span<const Complex>(x_true);
  const SparseSolution sol = orthogonal_matching_pursuit(a, y, 2);
  ASSERT_EQ(sol.support.size(), 2u);
  EXPECT_TRUE((sol.support[0] == 2 && sol.support[1] == 7) ||
              (sol.support[0] == 7 && sol.support[1] == 2));
  EXPECT_NEAR(std::abs(sol.coefficients[2] - x_true[2]), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(sol.coefficients[7] - x_true[7]), 0.0, 1e-6);
}

TEST(Omp, FullSupportActsAsLeastSquares) {
  Rng rng(19);
  Matrix a(8, 4);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.at(r, c) = {rng.gaussian(), rng.gaussian()};
    }
  }
  const std::vector<Complex> x_true = {{1, 1}, {2, 0}, {0, -1}, {0.5, 0.5}};
  const auto y = a * std::span<const Complex>(x_true);
  const SparseSolution sol = orthogonal_matching_pursuit(a, y, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(sol.coefficients[i] - x_true[i]), 0.0, 1e-6);
  }
}

TEST(Omp, ZeroSignal) {
  Matrix a = Matrix::identity(4);
  const std::vector<Complex> y(4, Complex{});
  const SparseSolution sol = orthogonal_matching_pursuit(a, y, 2);
  EXPECT_TRUE(sol.support.empty());
}

TEST(Viterbi, FollowsEmissionsWhenUnconstrained) {
  const double t = std::log(0.5);
  const Viterbi v({{t, t}, {t, t}}, {t, t});
  // Emissions prefer state 1 at odd steps.
  const auto path = v.decode(6, [](std::size_t step, std::size_t state) {
    return (step % 2 == state) ? 0.0 : -5.0;
  });
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(path.states[i], i % 2);
}

TEST(Viterbi, ForbiddenTransitionsBlockPath) {
  const double t = std::log(0.5);
  const double no = Viterbi::kForbidden;
  // State 0 cannot go to state 1 directly.
  const Viterbi v({{t, no}, {t, t}}, {0.0, no});
  const auto path = v.decode(3, [](std::size_t, std::size_t) { return 0.0; });
  for (std::size_t i = 0; i + 1 < path.states.size(); ++i) {
    EXPECT_FALSE(path.states[i] == 0 && path.states[i + 1] == 1);
  }
}

TEST(Viterbi, CorrectsSingleBadEmission) {
  // Two states that must alternate; one noisy observation mid-sequence
  // should be overridden by the transition structure.
  const double no = Viterbi::kForbidden;
  const Viterbi v({{no, 0.0}, {0.0, no}}, {0.0, no});
  const auto path = v.decode(5, [](std::size_t step, std::size_t state) {
    const std::size_t expected = step % 2;
    if (step == 2) return state == expected ? -3.0 : -1.0;  // lying emission
    return state == expected ? -0.1 : -10.0;
  });
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(path.states[i], i % 2);
}

}  // namespace
}  // namespace lfbs::dsp

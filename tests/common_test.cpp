// Tests for src/common: deterministic RNG, units, check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"

namespace lfbs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0, min = 1.0, max = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BitsLengthAndBalance) {
  Rng rng(29);
  const auto bits = rng.bits(10000);
  EXPECT_EQ(bits.size(), 10000u);
  int ones = 0;
  for (bool b : bits) ones += b ? 1 : 0;
  EXPECT_NEAR(ones, 5000, 300);
}

TEST(Rng, SplitIndependence) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream should not reproduce the parent's next outputs.
  Rng parent2(31);
  (void)parent2.split();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());  // parent deterministic
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Units, DbConversionsRoundTrip) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(db_to_linear(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-9);
  for (double db : {-7.0, 0.0, 4.5, 30.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, SamplesPerBit) {
  EXPECT_NEAR(samples_per_bit(25.0 * kMsps, 100.0 * kKbps), 250.0, 1e-9);
  EXPECT_NEAR(samples_per_bit(5.0 * kMsps, 10.0 * kKbps), 500.0, 1e-9);
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(500.0), "500 bps");
  EXPECT_EQ(format_rate(100.0 * kKbps), "100 kbps");
  EXPECT_EQ(format_rate(2.5e6), "2.5 Mbps");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(2.0), "2 s");
  EXPECT_EQ(format_duration(1.5e-3), "1.5 ms");
  EXPECT_EQ(format_duration(10e-6), "10 us");
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(LFBS_CHECK(1 == 2), CheckError);
  EXPECT_NO_THROW(LFBS_CHECK(1 == 1));
  try {
    LFBS_CHECK_MSG(false, "context message");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace lfbs

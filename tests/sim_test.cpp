// Tests for the simulation substrate: scenarios, metrics, tables, and the
// §2.4 collision math.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/collision_math.h"
#include "sim/metrics.h"
#include "sim/plot.h"
#include "sim/scenario.h"
#include "sim/table.h"

namespace lfbs::sim {
namespace {

TEST(Scenario, DeterministicGivenSeed) {
  ScenarioConfig cfg;
  cfg.num_tags = 4;
  Rng rng1(55), rng2(55);
  Scenario a(cfg, rng1), b(cfg, rng2);
  auto ra = a.run_epoch(a.default_decoder(), rng1);
  auto rb = b.run_epoch(b.default_decoder(), rng2);
  EXPECT_EQ(ra.payloads_recovered, rb.payloads_recovered);
  EXPECT_EQ(ra.sent_payloads, rb.sent_payloads);
}

TEST(Scenario, RecoversMostTagsAtPaperScale) {
  ScenarioConfig cfg;
  cfg.num_tags = 8;
  Rng rng(77);
  Scenario scenario(cfg, rng);
  const auto outcome = scenario.run_epoch(scenario.default_decoder(), rng);
  EXPECT_EQ(outcome.sent_payloads.size(), 8u);
  EXPECT_GE(outcome.payloads_recovered, 6u);
  EXPECT_EQ(outcome.bits_recovered, outcome.payloads_recovered * 96);
}

TEST(Scenario, RatesAssignedPerTag) {
  ScenarioConfig cfg;
  cfg.num_tags = 3;
  cfg.rates = {10.0 * kKbps, 100.0 * kKbps};
  Rng rng(5);
  Scenario scenario(cfg, rng);
  EXPECT_DOUBLE_EQ(scenario.rate_of(0), 10.0 * kKbps);
  EXPECT_DOUBLE_EQ(scenario.rate_of(1), 100.0 * kKbps);
  EXPECT_DOUBLE_EQ(scenario.rate_of(2), 100.0 * kKbps);  // last repeats
}

TEST(Scenario, DefaultDecoderCoversConfiguredRates) {
  ScenarioConfig cfg;
  cfg.rates = {25.0 * kKbps};  // not a paper rate
  Rng rng(6);
  Scenario scenario(cfg, rng);
  const auto dc = scenario.default_decoder();
  EXPECT_TRUE(dc.rate_plan.is_valid(25.0 * kKbps));
}

TEST(Metrics, ThroughputMeter) {
  ThroughputMeter meter;
  EXPECT_DOUBLE_EQ(meter.goodput(), 0.0);
  meter.add(1000, 1e-3);
  meter.add(500, 0.5e-3);
  EXPECT_NEAR(meter.goodput(), 1e6, 1.0);
  EXPECT_EQ(meter.bits(), 1500u);
}

TEST(Metrics, BerMeterComparesAndCountsMissing) {
  BerMeter meter;
  meter.compare({true, false, true, true}, {true, true, true});
  // One mismatch plus one missing bit.
  EXPECT_EQ(meter.errors(), 2u);
  EXPECT_EQ(meter.bits(), 4u);
  EXPECT_DOUBLE_EQ(meter.ber(), 0.5);
}

TEST(Table, AlignsAndPrints) {
  Table t({"a", "long header"});
  t.add_row({"1", "x"});
  t.add_row({"22", "yy"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | yy"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(7.94), "7.9x");
  EXPECT_EQ(fmt_percent(0.805), "80.5%");
}

TEST(CollisionMath, EdgeCapacityMatchesPaper) {
  CollisionModel model;  // 250 samples/bit, 3-sample edges
  EXPECT_NEAR(model.edge_capacity(), 83.3, 0.1);
}

TEST(CollisionMath, ClosedFormMatchesMonteCarlo) {
  Rng rng(9);
  CollisionModel model;
  for (std::size_t k : {1u, 2u, 3u}) {
    const double cf = model.collision_probability(k);
    const double mc = model.monte_carlo(k, 100000, rng);
    EXPECT_NEAR(mc, cf, 0.01) << "k=" << k;
  }
}

TEST(CollisionMath, ProbabilitiesDecreaseInK) {
  CollisionModel model;
  EXPECT_GT(model.collision_probability(1), model.collision_probability(2));
  EXPECT_GT(model.collision_probability(2), model.collision_probability(3));
  EXPECT_GT(model.collision_probability(3), model.collision_probability(4));
}

TEST(CollisionMath, SlowerRatesCollideLess) {
  CollisionModel fast;                 // 250 samples per bit
  CollisionModel slow = fast;
  slow.samples_per_bit = 2500.0;       // 10 kbps at 25 Msps
  EXPECT_LT(slow.collision_probability(2), fast.collision_probability(2));
}

TEST(CollisionMath, InPaperBallpark) {
  // §2.4: P(2-node) = 0.1890, P(3-node) = 0.0181 at 16 nodes / 100 kbps.
  // Our definition lands in the same ballpark (see bench_sec24 for the
  // side-by-side).
  CollisionModel model;
  EXPECT_NEAR(model.collision_probability(2), 0.189, 0.06);
  EXPECT_NEAR(model.collision_probability(3), 0.0181, 0.01);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  AsciiPlot plot(20, 5);
  plot.add_series("up", {0, 1, 2}, {0, 1, 2});
  plot.add_series("down", {0, 1, 2}, {2, 1, 0});
  std::ostringstream os;
  plot.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("up"), std::string::npos);
}

TEST(AsciiPlot, LogScaleHandlesZeros) {
  AsciiPlot plot(20, 5);
  plot.set_log_y(true);
  plot.add_series("ber", {0, 1, 2, 3}, {0.5, 0.01, 0.0, 0.0});
  std::ostringstream os;
  plot.print(os);  // must not throw or emit NaN axis labels
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(AsciiPlot, ConstantSeries) {
  AsciiPlot plot(20, 5);
  plot.add_series("flat", {0, 1}, {3.0, 3.0});
  std::ostringstream os;
  plot.print(os);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

}  // namespace
}  // namespace lfbs::sim

// Coverage for smaller public surfaces not exercised elsewhere: windowed
// polarity stitching, session accounting math, Buzz goodput, Gen 2 timing
// identities, and assorted edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/buzz.h"
#include "common/check.h"
#include "baseline/gen2.h"
#include "core/windowed_decoder.h"
#include "dsp/kmeans.h"
#include "reader/receiver.h"
#include "reader/session.h"
#include "tag/tag.h"
#include "protocol/rate_control.h"
#include "signal/eye_pattern.h"
#include "sim/table.h"

namespace lfbs {
namespace {

TEST(WindowedPolarity, FlipDetectionViaEdgeVector) {
  // Build two window-streams of the same thread where the second decoded
  // with inverted polarity (its first edge in the window was falling): the
  // stitcher must flip its bits using the edge-vector sign.
  using core::DecodedStream;
  // This is exercised through the public API indirectly; here we verify
  // the edge-vector convention itself: a decoded stream's edge_vector
  // approximates the tag's channel coefficient (stable sign across
  // windows when polarity is right).
  Rng rng(3);
  const Complex h{0.1, 0.04};
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  channel::ChannelModel ch;
  ch.add_tag(h);
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  tag::TagConfig tc;
  tag::Tag tag(tc, rng);
  const auto tx = tag.transmit_epoch(
      {protocol::build_frame(rng.bits(96), fc)}, 1.5e-3, rng);
  const auto buffer = receiver.receive_epoch({{tx.timeline}}, 1.5e-3, rng);
  core::DecoderConfig dc;
  dc.frame = fc;
  const auto result = core::LfDecoder(dc).decode(buffer);
  ASSERT_FALSE(result.streams.empty());
  // edge_vector ≈ +h (anchor normalization makes rising = +h).
  EXPECT_LT(std::abs(result.streams[0].edge_vector - h), 0.35 * std::abs(h));
}

TEST(SessionStats, GoodputMath) {
  reader::SessionStats stats;
  EXPECT_DOUBLE_EQ(stats.goodput(96), 0.0);
  stats.frames_valid = 10;
  stats.air_time = 1e-3;
  EXPECT_NEAR(stats.goodput(96), 960.0 / 1e-3, 1e-6);
}

TEST(BuzzGoodput, ZeroOnFailureOrNoAirTime) {
  baseline::Buzz buzz(baseline::BuzzConfig{}, {Complex{0.1, 0.0}});
  baseline::BuzzTransferResult r;
  r.air_time = 0.0;
  EXPECT_DOUBLE_EQ(buzz.goodput(r), 0.0);
  r.air_time = 1e-3;
  r.success = false;
  EXPECT_DOUBLE_EQ(buzz.goodput(r), 0.0);
  r.success = true;
  EXPECT_NEAR(buzz.goodput(r), 96.0 / 1e-3, 1e-6);
}

TEST(Gen2Timings, CommandDurationsOrdered) {
  const baseline::Gen2Timings t;
  // QueryRep is the shortest command; Query the longest of the openers.
  EXPECT_LT(t.query_rep(), t.query_adjust());
  EXPECT_LT(t.query_adjust(), t.query());
  EXPECT_LT(t.ack(), t.query());
  // An EPC reply dominates a whole singleton exchange's tag side.
  EXPECT_GT(t.epc_reply(), 5.0 * t.rn16() / 2.0);
}

TEST(EyePatternDetail, BinWidth) {
  const signal::EyePattern eye(250.0, 125);
  EXPECT_DOUBLE_EQ(eye.bin_width(), 2.0);
  EXPECT_EQ(eye.bins(), 125u);
  EXPECT_DOUBLE_EQ(eye.period_samples(), 250.0);
}

TEST(KMeansDetail, BicPrefersSeparatedOverMerged) {
  // kmeans_bic is exposed for diagnostics; at least it must prefer the
  // true-k fit over an absurd under-fit for well-separated data.
  Rng rng(8);
  std::vector<Complex> points;
  for (int i = 0; i < 100; ++i) {
    const Complex c = (i % 2 == 0) ? Complex{0, 0} : Complex{3, 3};
    points.push_back(c + Complex{rng.gaussian(0, 0.2), rng.gaussian(0, 0.2)});
  }
  const auto fit1 = dsp::kmeans(points, 1, rng);
  const auto fit2 = dsp::kmeans(points, 2, rng);
  EXPECT_GT(dsp::kmeans_bic(points, fit2), dsp::kmeans_bic(points, fit1));
}

TEST(StreamGroupDetail, PositionOf) {
  core::StreamGroup g;
  g.intercept = 100.0;
  g.slope = 250.5;
  EXPECT_DOUBLE_EQ(g.position_of(0), 100.0);
  EXPECT_DOUBLE_EQ(g.position_of(4), 100.0 + 4 * 250.5);
}

TEST(FrameConfigDetail, BitAccounting) {
  protocol::FrameConfig crc16;
  EXPECT_EQ(crc16.frame_bits(), 1u + 96u + 16u);
  protocol::FrameConfig crc5;
  crc5.crc = protocol::CrcKind::kCrc5;
  crc5.payload_bits = 24;
  EXPECT_EQ(crc5.frame_bits(), 1u + 24u + 5u);
}

TEST(WindowedConfigDetail, Validation) {
  core::WindowedDecoderConfig bad;
  bad.window = -1.0;
  EXPECT_THROW(core::WindowedDecoder{bad}, CheckError);
}

TEST(DecodeResultDetail, FrameAccounting) {
  core::DecodeResult result;
  core::DecodedStream s;
  protocol::ParsedFrame good;
  good.anchor_ok = true;
  good.crc_ok = true;
  protocol::ParsedFrame bad;
  s.frames = {good, bad, good};
  result.streams.push_back(s);
  EXPECT_EQ(result.frames_attempted(), 3u);
  EXPECT_EQ(result.frames_failed(), 1u);
  EXPECT_EQ(result.valid_payloads().size(), 2u);
}

TEST(WindowedGapFill, CoastsOverEdgeFreeWindow) {
  // A 24-bit constant run leaves an entire 10 ms processing window without
  // edges; the stitcher must keep one thread alive across it (coasting on
  // timing) rather than fragmenting the stream. Bit-perfect recovery
  // through such holes is only guaranteed by the single-shot decoder —
  // which is asserted too — the windowed mode's contract is thread
  // continuity at the correct rate.
  Rng rng(44);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-6;
  channel::ChannelModel ch;
  ch.add_tag({0.12, 0.05});
  reader::Receiver receiver(rc, ch);
  std::vector<bool> payload(96, false);
  for (int i = 0; i < 36; ++i) payload[i] = rng.bernoulli(0.5);
  for (int i = 60; i < 96; ++i) payload[i] = rng.bernoulli(0.5);
  for (int i = 36; i < 60; ++i) payload[i] = true;
  protocol::FrameConfig fc;
  tag::TagConfig tc;
  tc.rate = 2.0 * kKbps;  // 113 bits -> 56.5 ms, spanning several windows
  tag::Tag tag(tc, rng);
  const Seconds duration = 113.0 / (2.0 * kKbps) + 1e-3;
  const auto tx = tag.transmit_epoch({protocol::build_frame(payload, fc)},
                                     duration, rng);
  const auto buffer = receiver.receive_epoch({{tx.timeline}}, duration, rng);

  core::WindowedDecoderConfig wc;
  wc.decoder.frame = fc;
  wc.window = 10e-3;
  const auto windowed = core::WindowedDecoder(wc).decode(buffer);
  // One dominant thread at the right rate spanning most of the capture.
  std::size_t longest = 0;
  BitRate longest_rate = 0.0;
  for (const auto& s2 : windowed.streams) {
    if (s2.bits.size() > longest) {
      longest = s2.bits.size();
      longest_rate = s2.rate;
    }
  }
  EXPECT_GE(longest, 100u);
  EXPECT_NEAR(longest_rate, 2.0 * kKbps, 1.0);

  // The single-shot decoder recovers the frame exactly.
  const auto plain = core::LfDecoder(wc.decoder).decode(buffer);
  bool found = false;
  for (const auto& p : plain.valid_payloads()) {
    if (p == payload) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RateControllerDetail, RaiseStopsAtPlanCeiling) {
  protocol::RateController rc(protocol::RatePlan::paper_rates(),
                              100.0 * kKbps);
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(rc.on_epoch(100, 0).has_value());  // nothing above 100 kbps
  }
  EXPECT_DOUBLE_EQ(rc.current_max(), 100.0 * kKbps);
}

TEST(TableDetail, RowArityEnforced) {
  sim::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(ChannelPlacementDetail, DistancePhaseDeterminism) {
  Rng r1(5), r2(5);
  channel::ChannelModel a, b;
  channel::TagPlacement p;
  p.distance_m = 1.7;
  p.orientation_rad = 0.3;
  a.add_tag(p, r1);
  b.add_tag(p, r2);
  EXPECT_EQ(a.coefficient(0), b.coefficient(0));
}

}  // namespace
}  // namespace lfbs

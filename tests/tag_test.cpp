// Tests for src/tag: clock drift, comparator wake-up, modulation, sensors,
// and the assembled tag.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/stats.h"
#include "tag/clock_model.h"
#include "tag/datapath.h"
#include "tag/modulator.h"
#include "tag/sensor.h"
#include "tag/start_trigger.h"
#include "tag/tag.h"

namespace lfbs::tag {
namespace {

TEST(ClockModel, DriftWithinConfiguredBound) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    ClockModel clock({.drift_ppm = 150.0, .jitter_ppm = 0.0}, rng);
    EXPECT_LE(std::abs(clock.actual_ppm()), 150.0);
  }
}

TEST(ClockModel, StretchedAppliesPpm) {
  Rng rng(2);
  const ClockModel clock({.drift_ppm = 150.0, .jitter_ppm = 0.0}, rng);
  const double expected = 1e-5 * (1.0 + clock.actual_ppm() * 1e-6);
  EXPECT_NEAR(clock.stretched(1e-5), expected, 1e-18);
}

TEST(ClockModel, JitterAveragesOut) {
  Rng rng(3);
  const ClockModel clock({.drift_ppm = 0.0, .jitter_ppm = 50.0}, rng);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += clock.next_cycle(1e-5, rng);
  EXPECT_NEAR(sum / n, 1e-5, 1e-9);
}

TEST(ClockModel, DifferentPartsDifferentDrift) {
  Rng rng(4);
  const ClockModel a({.drift_ppm = 150.0, .jitter_ppm = 0.0}, rng);
  const ClockModel b({.drift_ppm = 150.0, .jitter_ppm = 0.0}, rng);
  EXPECT_NE(a.actual_ppm(), b.actual_ppm());
}

TEST(StartTrigger, MoreEnergyFiresEarlier) {
  Rng rng(5);
  StartTrigger::Config cfg;
  cfg.charging_noise = 0.0;
  const StartTrigger trigger(cfg, rng);
  EXPECT_LT(trigger.fire_delay(1.3, rng), trigger.fire_delay(0.7, rng));
}

TEST(StartTrigger, PartToPartSpreadCoversBitPeriods) {
  // The paper's argument (§3.2): natural comparator randomness spreads the
  // start offsets across several bit periods at 100 kbps.
  Rng rng(6);
  std::vector<double> delays;
  for (int i = 0; i < 200; ++i) {
    const StartTrigger trigger(StartTrigger::Config{}, rng);
    delays.push_back(trigger.fire_delay(rng.uniform(0.7, 1.3), rng));
  }
  const double spread = dsp::max(delays) - dsp::min(delays);
  EXPECT_GT(spread, 3e-5);  // more than three 10 us bit periods
}

TEST(StartTrigger, PerEpochJitterNonZero) {
  Rng rng(7);
  const StartTrigger trigger(StartTrigger::Config{}, rng);
  const double a = trigger.fire_delay(1.0, rng);
  const double b = trigger.fire_delay(1.0, rng);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, 2e-5);  // but small versus the part-to-part spread
}

TEST(StartTrigger, SurvivesExtremeEnergy) {
  Rng rng(8);
  const StartTrigger trigger(StartTrigger::Config{}, rng);
  EXPECT_GT(trigger.fire_delay(0.05, rng), 0.0);  // clamps, never NaN/inf
  EXPECT_TRUE(std::isfinite(trigger.fire_delay(100.0, rng)));
}

TEST(Modulator, BoundariesFollowClock) {
  Rng rng(9);
  const ClockModel clock({.drift_ppm = 0.0, .jitter_ppm = 0.0}, rng);
  const Modulator mod(100.0 * kKbps);
  std::vector<Seconds> boundaries;
  const auto tl = mod.modulate({true, false, true}, 1e-3, clock, rng,
                               &boundaries);
  ASSERT_EQ(boundaries.size(), 4u);  // 3 bits + trailing boundary
  EXPECT_DOUBLE_EQ(boundaries[0], 1e-3);
  EXPECT_NEAR(boundaries[1] - boundaries[0], 1e-5, 1e-12);
  EXPECT_DOUBLE_EQ(tl.level_at(1.005e-3), 1.0);
  EXPECT_DOUBLE_EQ(tl.level_at(1.015e-3), 0.0);
}

TEST(Sensors, TemperatureQuantizesPlausibly) {
  Rng rng(10);
  TemperatureSensor sensor(22.0, 12);
  const auto bits = sensor.sample_bits(24, rng);
  EXPECT_EQ(bits.size(), 24u);
  EXPECT_NEAR(sensor.last_reading(), 22.0, 2.0);
}

TEST(Sensors, MediaSensorIsHighEntropy) {
  Rng rng(11);
  MediaSensor sensor;
  const auto bits = sensor.sample_bits(4000, rng);
  int ones = 0;
  for (bool b : bits) ones += b ? 1 : 0;
  EXPECT_NEAR(ones, 2000, 200);
}

TEST(Sensors, IdentifierRepeats) {
  Rng rng(12);
  IdentifierSensor sensor({true, false, true});
  const auto bits = sensor.sample_bits(7, rng);
  const std::vector<bool> expected = {true, false, true, true,
                                      false, true, true};
  EXPECT_EQ(bits, expected);
}

TEST(Tag, TransmitsWholeFramesWithinEpoch) {
  Rng rng(13);
  TagConfig cfg;
  cfg.rate = 100.0 * kKbps;
  Tag tag(cfg, rng);
  const std::vector<bool> frame(50, true);
  const auto tx = tag.transmit_epoch({frame, frame}, 2e-3, rng);
  EXPECT_EQ(tx.frames_completed, 2u);
  EXPECT_EQ(tx.bits.size(), 100u);
  EXPECT_EQ(tx.boundaries.size(), 101u);
  EXPECT_GT(tx.start_time, 0.0);
}

TEST(Tag, TruncatesAtEpochEnd) {
  Rng rng(14);
  TagConfig cfg;
  cfg.rate = 1.0 * kKbps;  // 1 ms per bit
  Tag tag(cfg, rng);
  const std::vector<bool> frame(100, true);  // needs 100 ms
  const auto tx = tag.transmit_epoch({frame}, 10e-3, rng);
  EXPECT_EQ(tx.frames_completed, 0u);
  EXPECT_LT(tx.bits.size(), frame.size());
  EXPECT_LE(tx.boundaries.back(), 10e-3);
}

TEST(Tag, RateCommandOnlyAffectsListeners) {
  Rng rng(15);
  TagConfig deaf;
  deaf.rate = 100.0 * kKbps;
  deaf.listens_to_reader = false;
  Tag deaf_tag(deaf, rng);
  deaf_tag.apply_rate_command(10.0 * kKbps);
  EXPECT_DOUBLE_EQ(deaf_tag.rate(), 100.0 * kKbps);

  TagConfig obedient = deaf;
  obedient.listens_to_reader = true;
  Tag listening_tag(obedient, rng);
  listening_tag.apply_rate_command(10.0 * kKbps);
  EXPECT_DOUBLE_EQ(listening_tag.rate(), 10.0 * kKbps);
  // A raise command never exceeds the current rate.
  listening_tag.apply_rate_command(50.0 * kKbps);
  EXPECT_DOUBLE_EQ(listening_tag.rate(), 10.0 * kKbps);
}

TEST(Tag, StartTimeVariesAcrossEpochs) {
  Rng rng(16);
  TagConfig cfg;
  Tag tag(cfg, rng);
  const std::vector<bool> frame(10, true);
  const auto a = tag.transmit_epoch({frame}, 1e-3, rng);
  const auto b = tag.transmit_epoch({frame}, 1e-3, rng);
  EXPECT_NE(a.start_time, b.start_time);
}

TEST(TagDatapath, SampledBitsDriveAntennaWithUnitLatency) {
  Rng rng(20);
  TagDatapath dp;
  const auto bits = rng.bits(64);
  // Wake: carrier appears; two cycles of sleep/settling.
  dp.clock(true, false);
  dp.clock(true, false);
  for (bool b : bits) dp.clock(true, b);
  dp.clock(true, false);  // flush the last pending bit
  // Antenna history after settling must equal the sensor bits, delayed by
  // exactly one cycle — sample in, bit out, nothing stored.
  const auto& hist = dp.antenna_history();
  ASSERT_GE(hist.size(), bits.size() + 3);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_DOUBLE_EQ(hist[3 + i], bits[i] ? 1.0 : 0.0) << i;
  }
}

TEST(TagDatapath, NeverBuffersMoreThanOneBit) {
  Rng rng(21);
  TagDatapath dp;
  for (int i = 0; i < 500; ++i) {
    dp.clock(i > 3, rng.bernoulli(0.5));
  }
  EXPECT_LE(dp.max_bits_in_flight(), 1u);
  EXPECT_GT(dp.bits_transmitted(), 400u);
}

TEST(TagDatapath, SleepsWithoutCarrier) {
  TagDatapath dp;
  for (int i = 0; i < 10; ++i) dp.clock(false, true);
  EXPECT_EQ(dp.state(), TagDatapath::State::kSleep);
  EXPECT_EQ(dp.cycles_active(), 0u);
  EXPECT_EQ(dp.cycles_sleep(), 10u);
  EXPECT_DOUBLE_EQ(dp.antenna_level(), 0.0);
}

TEST(TagDatapath, CarrierLossDropsToIdleImmediately) {
  Rng rng(22);
  TagDatapath dp;
  dp.clock(true, false);
  dp.clock(true, false);
  for (int i = 0; i < 20; ++i) dp.clock(true, true);
  EXPECT_EQ(dp.state(), TagDatapath::State::kActive);
  dp.clock(false, true);
  EXPECT_EQ(dp.state(), TagDatapath::State::kSleep);
  EXPECT_DOUBLE_EQ(dp.antenna_level(), 0.0);
}

}  // namespace
}  // namespace lfbs::tag

// Tests for src/channel: composition, noise, dynamics, link budget.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/channel_model.h"
#include "channel/dynamics.h"
#include "channel/link_budget.h"
#include "channel/noise.h"

namespace lfbs::channel {
namespace {

TEST(ChannelModel, ComposeIsLinear) {
  ChannelModel ch;
  ch.set_environment({0.5, 0.5});
  ch.add_tag({0.1, 0.0});
  ch.add_tag({0.0, 0.2});
  const std::vector<std::vector<double>> levels = {{0, 1, 1}, {0, 0, 1}};
  const auto buf = ch.compose(1e6, levels);
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf[0], (Complex{0.5, 0.5}));
  EXPECT_EQ(buf[1], (Complex{0.6, 0.5}));
  EXPECT_EQ(buf[2], (Complex{0.6, 0.7}));
}

TEST(ChannelModel, PlacementAmplitudeFallsWithDistanceSquared) {
  Rng rng(1);
  ChannelModel ch;
  double sum_near = 0.0, sum_far = 0.0;
  for (int i = 0; i < 64; ++i) {
    TagPlacement near{.distance_m = 1.0};
    TagPlacement far{.distance_m = 2.0};
    sum_near += std::abs(ch.coefficient(ch.add_tag(near, rng)));
    sum_far += std::abs(ch.coefficient(ch.add_tag(far, rng)));
  }
  EXPECT_NEAR(sum_near / sum_far, 4.0, 0.5);
}

TEST(ChannelModel, TimeVaryingCoefficients) {
  ChannelModel ch;
  ch.set_environment({});
  ch.add_tag({1.0, 0.0});  // static value unused by compose_time_varying
  const std::vector<std::vector<double>> levels = {{1, 1}};
  const std::vector<std::vector<Complex>> coeffs = {{{0.1, 0}, {0.2, 0}}};
  const auto buf = ch.compose_time_varying(1e6, levels, coeffs);
  EXPECT_NEAR(buf[0].real(), 0.1, 1e-12);
  EXPECT_NEAR(buf[1].real(), 0.2, 1e-12);
}

TEST(Noise, AwgnPowerMatchesRequest) {
  Rng rng(2);
  signal::SampleBuffer buf(1e6, 50000);
  add_awgn(buf, 0.01, rng);
  double p = 0.0;
  for (std::size_t i = 0; i < buf.size(); ++i) p += std::norm(buf[i]);
  EXPECT_NEAR(p / static_cast<double>(buf.size()), 0.01, 0.001);
}

TEST(Noise, SnrHelpersRoundTrip) {
  const double signal = 0.04;
  const double noise = noise_power_for_snr(signal, 13.0);
  EXPECT_NEAR(measured_snr_db(signal, noise), 13.0, 1e-9);
}

TEST(Noise, ZeroNoiseIsNoOp) {
  Rng rng(3);
  signal::SampleBuffer buf(1e6, 10);
  buf[3] = {1.0, -1.0};
  add_awgn(buf, 0.0, rng);
  EXPECT_EQ(buf[3], (Complex{1.0, -1.0}));
  EXPECT_EQ(buf[0], Complex{});
}

TEST(Dynamics, PeopleMovementVariesAroundBaseline) {
  Rng rng(4);
  PeopleMovementModel model;
  const Complex h0{0.2, 0.1};
  const auto trace = model.generate(h0, 100.0, 10.0, rng);
  const TraceStats stats = summarize_trace(trace);
  EXPECT_NEAR(stats.mean_magnitude, std::abs(h0), 0.1);
  EXPECT_GT(stats.magnitude_stddev, 0.005);  // it moves
  EXPECT_GT(stats.total_excursion, 0.05);
}

TEST(Dynamics, RotationSweepsGainPattern) {
  Rng rng(5);
  TagRotationModel model;
  const auto trace = model.generate({0.25, 0.0}, 200.0, 8.0, rng);
  double min_mag = 1e9, max_mag = 0.0;
  for (const Complex& h : trace) {
    min_mag = std::min(min_mag, std::abs(h));
    max_mag = std::max(max_mag, std::abs(h));
  }
  // Rotation passes through pattern nulls and peaks.
  EXPECT_LT(min_mag, 0.25 * 0.2);
  EXPECT_GT(max_mag, 0.25 * 0.8);
}

TEST(Dynamics, CouplingOnlyBelowThresholdDistance) {
  Rng rng(6);
  CouplingModel model;
  const Complex h1{0.2, 0.0}, h2{0.0, 0.2};
  const auto traces = model.generate(h1, h2, 100.0, 10.0, rng);
  ASSERT_EQ(traces.size(), 2u);
  // Early in the approach (distance ~1 m) coefficients are unchanged.
  EXPECT_NEAR(std::abs(traces[0][5] - h1), 0.0, 1e-9);
  // Near the end (5 cm) the coupling shifts both coefficients.
  EXPECT_GT(std::abs(traces[0].back() - h1), 0.01);
  EXPECT_GT(std::abs(traces[1].back() - h2), 0.01);
}

TEST(Dynamics, CouplingDistanceInterpolatesLinearly) {
  CouplingModel model;
  EXPECT_NEAR(model.distance_at(0.0, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(model.distance_at(10.0, 10.0), 0.05, 1e-12);
  EXPECT_NEAR(model.distance_at(5.0, 10.0), 0.525, 1e-12);
}

TEST(Dynamics, SummaryOfConstantTraceIsZeroMotion) {
  const std::vector<Complex> trace(100, Complex{0.3, -0.1});
  const TraceStats stats = summarize_trace(trace);
  EXPECT_NEAR(stats.magnitude_stddev, 0.0, 1e-12);
  EXPECT_NEAR(stats.max_step, 0.0, 1e-12);
  EXPECT_NEAR(stats.total_excursion, 0.0, 1e-12);
}

TEST(LinkBudget, InverseFourthPowerLaw) {
  LinkBudget link;
  const double p1 = link.received_power(1.0);
  const double p2 = link.received_power(2.0);
  EXPECT_NEAR(p1 / p2, 16.0, 1e-6);
}

TEST(LinkBudget, RangeForSnrInvertsSnr) {
  LinkBudget link;
  const double noise = 1e-12;
  const double range = link.range_for_snr(10.0, noise);
  EXPECT_NEAR(link.snr_db(range, noise), 10.0, 1e-6);
}

TEST(LinkBudget, DeratedRangeMatchesPaperExample) {
  // §5.4: a 4 dB penalty turns 10 ft into ~8 ft and 30 ft into ~24 ft.
  EXPECT_NEAR(LinkBudget::derated_range(10.0, 4.0), 7.94, 0.05);
  EXPECT_NEAR(LinkBudget::derated_range(30.0, 4.0), 23.83, 0.15);
  EXPECT_DOUBLE_EQ(LinkBudget::derated_range(10.0, 0.0), 10.0);
}

}  // namespace
}  // namespace lfbs::channel

// Tests for the windowed (streaming) decoder: cross-window stitching,
// polarity resolution, gap filling — and the resynchronizing frame scanner
// it relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "channel/channel_model.h"
#include "core/windowed_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"

namespace lfbs::core {
namespace {

struct LongCapture {
  signal::SampleBuffer buffer{1e6, std::size_t{0}};
  std::vector<std::vector<bool>> payloads;
};

/// A multi-window capture: `tags` tags stream frames for `duration`.
LongCapture make_capture(std::size_t num_tags, Seconds duration,
                         double drift_ppm, std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = drift_ppm;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  LongCapture cap;
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      cap.payloads.push_back(rng.bits(96));
      frames.push_back(protocol::build_frame(cap.payloads.back(), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  cap.buffer = receiver.receive_epoch(timelines, duration, rng);
  return cap;
}

std::size_t recovered(const DecodeResult& result,
                      const std::vector<std::vector<bool>>& payloads) {
  std::multiset<std::vector<bool>> pool;
  for (const auto& p : result.valid_payloads()) pool.insert(p);
  std::size_t n = 0;
  for (const auto& p : payloads) {
    const auto it = pool.find(p);
    if (it != pool.end()) {
      pool.erase(it);
      ++n;
    }
  }
  return n;
}

TEST(WindowedDecoder, ShortCaptureFallsThroughToPlain) {
  const auto cap = make_capture(1, 2e-3, 150.0, 11);
  WindowedDecoderConfig wc;  // 20 ms window >> 2 ms capture
  const auto win = WindowedDecoder(wc).decode(cap.buffer);
  const auto plain = LfDecoder(wc.decoder).decode(cap.buffer);
  ASSERT_EQ(win.streams.size(), plain.streams.size());
  for (std::size_t i = 0; i < win.streams.size(); ++i) {
    EXPECT_EQ(win.streams[i].bits, plain.streams[i].bits);
  }
}

TEST(WindowedDecoder, StitchesSingleTagAcrossManyWindows) {
  // 100 ms of continuous streaming = 5 windows of 20 ms.
  const auto cap = make_capture(1, 100e-3, 150.0, 12);
  WindowedDecoderConfig wc;
  const auto result = WindowedDecoder(wc).decode(cap.buffer);
  // One stitched thread, not five fragments.
  std::size_t long_threads = 0;
  for (const auto& s : result.streams) {
    if (s.bits.size() > 2000) ++long_threads;
  }
  EXPECT_EQ(long_threads, 1u);
  // Nearly all frames recovered across every seam.
  EXPECT_GE(recovered(result, cap.payloads), cap.payloads.size() - 2);
}

TEST(WindowedDecoder, TwoTagsStayOnSeparateThreads) {
  const auto cap = make_capture(2, 80e-3, 150.0, 13);
  WindowedDecoderConfig wc;
  const auto result = WindowedDecoder(wc).decode(cap.buffer);
  EXPECT_GE(recovered(result, cap.payloads),
            cap.payloads.size() * 8 / 10);
}

TEST(WindowedDecoder, BoundedMemoryEquivalence) {
  // The streaming decoder must recover a comparable share of frames to the
  // single-shot decoder on a capture that fits in memory.
  const auto cap = make_capture(3, 60e-3, 150.0, 14);
  WindowedDecoderConfig wc;
  const auto win = WindowedDecoder(wc).decode(cap.buffer);
  const auto plain = LfDecoder(wc.decoder).decode(cap.buffer);
  const std::size_t win_n = recovered(win, cap.payloads);
  const std::size_t plain_n = recovered(plain, cap.payloads);
  EXPECT_GE(win_n + cap.payloads.size() / 5, plain_n);
}

TEST(ScanFrames, ResynchronizesAfterBitSlip) {
  Rng rng(15);
  protocol::FrameConfig fc;
  const auto p1 = rng.bits(96);
  const auto p2 = rng.bits(96);
  auto bits = protocol::build_frame(p1, fc);
  bits.push_back(false);  // one slipped bit between the frames
  const auto f2 = protocol::build_frame(p2, fc);
  bits.insert(bits.end(), f2.begin(), f2.end());

  // The rigid parser loses the second frame; the scanner recovers it.
  const auto rigid = protocol::parse_stream(bits, fc);
  std::size_t rigid_ok = 0;
  for (const auto& f : rigid) {
    if (f.valid()) ++rigid_ok;
  }
  EXPECT_EQ(rigid_ok, 1u);
  const auto scanned = protocol::scan_frames(bits, fc);
  ASSERT_EQ(scanned.size(), 2u);
  EXPECT_EQ(scanned[0].payload, p1);
  EXPECT_EQ(scanned[1].payload, p2);
}

TEST(ScanFrames, EmptyAndGarbage) {
  Rng rng(16);
  protocol::FrameConfig fc;
  EXPECT_TRUE(protocol::scan_frames({}, fc).empty());
  // 2000 random bits: expected CRC-16 false positives ~ 2000/65536 << 1.
  const auto garbage = rng.bits(2000);
  EXPECT_LE(protocol::scan_frames(garbage, fc).size(), 1u);
}

}  // namespace
}  // namespace lfbs::core

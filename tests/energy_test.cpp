// Tests for the hardware complexity and power models (Table 3 / Fig 13).
#include <gtest/gtest.h>

#include "energy/duty_cycle.h"
#include "energy/power_model.h"
#include "energy/transistor_model.h"

namespace lfbs::energy {
namespace {

TEST(TransistorModel, MatchesPaperTableThree) {
  EXPECT_EQ(transistor_count(Protocol::kEpcGen2, false), 22704u);
  EXPECT_EQ(transistor_count(Protocol::kEpcGen2, true), 34992u);
  EXPECT_EQ(transistor_count(Protocol::kBuzz, false), 1792u);
  EXPECT_EQ(transistor_count(Protocol::kBuzz, true), 14080u);
  EXPECT_EQ(transistor_count(Protocol::kLfBackscatter, false), 176u);
  EXPECT_EQ(transistor_count(Protocol::kLfBackscatter, true), 176u);
}

TEST(TransistorModel, BreakdownSumsToTotal) {
  for (Protocol p : {Protocol::kEpcGen2, Protocol::kBuzz,
                     Protocol::kLfBackscatter}) {
    for (bool fifo : {false, true}) {
      const auto b = transistor_breakdown(p, fifo);
      EXPECT_EQ(b.total(), transistor_count(p, fifo));
    }
  }
}

TEST(TransistorModel, LfNeedsNoReceivePathOrBuffers) {
  const auto b = transistor_breakdown(Protocol::kLfBackscatter, true);
  EXPECT_EQ(b.demodulator, 0u);
  EXPECT_EQ(b.crc, 0u);
  EXPECT_EQ(b.fifo, 0u);
  EXPECT_EQ(b.control_logic, 0u);
  EXPECT_GT(b.modulator, 0u);
  EXPECT_GT(b.clocking, 0u);
}

TEST(TransistorModel, FifoDeltaConsistent) {
  EXPECT_EQ(transistor_count(Protocol::kEpcGen2, true) -
                transistor_count(Protocol::kEpcGen2, false),
            kFifo1KBTransistors);
  EXPECT_EQ(transistor_count(Protocol::kBuzz, true) -
                transistor_count(Protocol::kBuzz, false),
            kFifo1KBTransistors);
}

TEST(TransistorModel, Names) {
  EXPECT_EQ(protocol_name(Protocol::kEpcGen2), "EPC Gen 2");
  EXPECT_EQ(protocol_name(Protocol::kLfBackscatter), "LF-Backscatter");
}

TEST(PowerModel, OrderingMatchesComplexity) {
  const PowerModel model;
  const double lf =
      model.tag_power(Protocol::kLfBackscatter, 100.0 * kKbps, false).total_w;
  const double buzz =
      model.tag_power(Protocol::kBuzz, 100.0 * kKbps, true).total_w;
  const double gen2 =
      model.tag_power(Protocol::kEpcGen2, 100.0 * kKbps, true).total_w;
  EXPECT_LT(lf, buzz);
  EXPECT_LT(buzz, gen2);
}

TEST(PowerModel, LfAtCalibrationPoint) {
  // Calibration anchor: LF-Backscatter at 100 kbps ≈ 31 µW, i.e. ~3200
  // bits/µJ — the top of Fig 13's y axis.
  const PowerModel model;
  const auto p =
      model.tag_power(Protocol::kLfBackscatter, 100.0 * kKbps, false);
  EXPECT_NEAR(p.total_w * 1e6, 31.0, 3.0);
  EXPECT_NEAR(model.bits_per_microjoule(Protocol::kLfBackscatter,
                                        100.0 * kKbps, 100.0 * kKbps, false),
              3200.0, 350.0);
}

TEST(PowerModel, PowerGrowsWithBitrate) {
  const PowerModel model;
  const double slow =
      model.tag_power(Protocol::kLfBackscatter, 1.0 * kKbps, false).total_w;
  const double fast =
      model.tag_power(Protocol::kLfBackscatter, 250.0 * kKbps, false).total_w;
  EXPECT_LT(slow, fast);
}

TEST(PowerModel, EfficiencyProportionalToGoodput) {
  const PowerModel model;
  const double full = model.bits_per_microjoule(
      Protocol::kBuzz, 100.0 * kKbps, 100.0 * kKbps, true);
  const double half = model.bits_per_microjoule(
      Protocol::kBuzz, 100.0 * kKbps, 50.0 * kKbps, true);
  EXPECT_NEAR(full / half, 2.0, 1e-9);
}

TEST(PowerModel, Gen2PaysForDecodeClock) {
  const PowerModel model;
  const auto gen2 = model.tag_power(Protocol::kEpcGen2, 100.0 * kKbps, true);
  const auto buzz = model.tag_power(Protocol::kBuzz, 100.0 * kKbps, true);
  // Gen 2 digital power dominated by the always-on decode clock.
  EXPECT_GT(gen2.digital_w, 10.0 * buzz.digital_w);
}

TEST(DutyCycle, OneHzSensorIsBatteryless) {
  // The §1 claim: a blind 1 Hz temperature sensor lands well under 10 uW.
  const PowerModel model;
  SenseTransmitLoop loop;
  loop.sample_rate_hz = 1.0;
  loop.bits_per_sample = 16.0;
  loop.tx_rate = 10.0 * kKbps;
  EXPECT_LT(loop.duty_cycle(), 0.01);
  EXPECT_LT(loop.average_power_w(model, Protocol::kLfBackscatter), 10e-6);
}

TEST(DutyCycle, ListeningProtocolsPayTensOfMicrowatts) {
  const PowerModel model;
  SenseTransmitLoop loop;
  loop.sample_rate_hz = 1.0;
  loop.bits_per_sample = 16.0;
  loop.tx_rate = 10.0 * kKbps;
  const double lf = loop.average_power_w(model, Protocol::kLfBackscatter);
  const double buzz = loop.average_power_w(model, Protocol::kBuzz);
  const double gen2 = loop.average_power_w(model, Protocol::kEpcGen2);
  // "increases power consumption by several tens of uW over a simpler
  // design" (§1).
  EXPECT_GT(buzz - lf, 10e-6);
  EXPECT_GT(gen2 - lf, 20e-6);
}

TEST(DutyCycle, StreamingStaysTensOfMicrowatts) {
  // "hundreds of Kbps while consuming only tens of micro-watts" (§1).
  const PowerModel model;
  SenseTransmitLoop mic;
  mic.sample_rate_hz = 8000.0;
  mic.bits_per_sample = 8.0;
  mic.tx_rate = 100.0 * kKbps;
  mic.sense_energy_j = 4e-9;
  const double p = mic.average_power_w(model, Protocol::kLfBackscatter);
  EXPECT_GT(p, 10e-6);
  EXPECT_LT(p, 100e-6);
}

TEST(DutyCycle, SaturatesAtFullDuty) {
  SenseTransmitLoop loop;
  loop.sample_rate_hz = 1e6;
  loop.bits_per_sample = 8.0;
  loop.tx_rate = 100.0 * kKbps;  // oversubscribed
  EXPECT_DOUBLE_EQ(loop.duty_cycle(), 1.0);
  EXPECT_DOUBLE_EQ(loop.effective_bitrate(), 100.0 * kKbps);
}

}  // namespace
}  // namespace lfbs::energy

// Hardening tests: the decoder must degrade gracefully — never crash,
// never fabricate CRC-valid frames — on degenerate, hostile, or absurd
// inputs.
#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>
#include <set>

#include "baseline/ask_decoder.h"
#include "channel/channel_model.h"
#include "channel/dynamics.h"
#include "channel/noise.h"
#include "core/windowed_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"

namespace lfbs::core {
namespace {

DecodeResult decode(const signal::SampleBuffer& buffer) {
  return LfDecoder{DecoderConfig{}}.decode(buffer);
}

TEST(Robustness, EmptyBuffer) {
  const auto result = decode(signal::SampleBuffer{});
  EXPECT_TRUE(result.streams.empty());
  EXPECT_EQ(result.diagnostics.edges, 0u);
}

TEST(Robustness, SingleSample) {
  signal::SampleBuffer buf(25.0 * kMsps, 1);
  buf[0] = {1.0, 1.0};
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, AllZeros) {
  const signal::SampleBuffer buf(25.0 * kMsps, 50000);
  const auto result = decode(buf);
  EXPECT_TRUE(result.streams.empty());
}

TEST(Robustness, ConstantDc) {
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = {3.0, -2.0};
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, SingleStepNoStream) {
  // One lonely toggle is not a stream (min_edges).
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 25000; i < buf.size(); ++i) buf[i] = {0.2, 0.1};
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, ExtremeAmplitudes) {
  Rng rng(3);
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(0.0, 1e6), rng.gaussian(0.0, 1e6)};
  }
  const auto result = decode(buf);  // must not crash or hang
  for (const auto& s : result.streams) {
    EXPECT_TRUE(std::isfinite(s.snr_db));
  }
}

TEST(Robustness, TinyAmplitudes) {
  Rng rng(4);
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(0.0, 1e-12), rng.gaussian(0.0, 1e-12)};
  }
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, SquareWaveAtInvalidRate) {
  // A strong periodic toggle at a rate *not* in the plan: the decoder may
  // lock to the nearest valid lattice but must not emit CRC-valid frames.
  signal::SampleBuffer buf(25.0 * kMsps, 100000);
  const double period = 333.3;  // ~75 kbps: not a paper rate
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const bool on = std::fmod(static_cast<double>(i), 2.0 * period) < period;
    buf[i] = on ? Complex{0.1, 0.05} : Complex{0.0, 0.0};
  }
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, NoisePlusToneNeverValidatesFrames) {
  // 100 random-noise buffers: the CRC-16 must hold the fabricated-frame
  // rate at (essentially) zero.
  std::size_t fabricated = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(100 + trial);
    signal::SampleBuffer buf(5.0 * kMsps, 30000);
    channel::add_awgn(buf, 0.01, rng);
    fabricated += decode(buf).valid_payloads().size();
  }
  EXPECT_EQ(fabricated, 0u);
}

TEST(Robustness, WindowedDecoderDegenerateInputs) {
  const WindowedDecoder decoder{WindowedDecoderConfig{}};
  EXPECT_TRUE(decoder.decode(signal::SampleBuffer{}).streams.empty());
  signal::SampleBuffer dc(25.0 * kMsps, 2000000);  // 80 ms of DC
  for (std::size_t i = 0; i < dc.size(); ++i) dc[i] = {1.0, 0.0};
  EXPECT_TRUE(decoder.decode(dc).valid_payloads().empty());
}

TEST(Robustness, AskDecoderDegenerateInputs) {
  const baseline::AskDecoder ask{baseline::AskDecoderConfig{}};
  EXPECT_TRUE(ask.decode(signal::SampleBuffer{}).bits.empty());
  signal::SampleBuffer constant(5.0 * kMsps, 10000);
  for (std::size_t i = 0; i < constant.size(); ++i) constant[i] = {0.7, 0.0};
  EXPECT_TRUE(ask.decode(constant).bits.empty());
}

/// Single-tag framed capture over a per-sample channel-coefficient trace
/// (the Fig 1 impairment models), with the transmitted payloads returned
/// for the no-fabrication check.
struct ImpairedCapture {
  signal::SampleBuffer buffer{5.0 * kMsps, std::size_t{0}};
  std::vector<std::vector<bool>> payloads;
};

template <typename Model>
ImpairedCapture impaired_capture(const Model& model, double noise_power,
                                 std::uint64_t seed) {
  Rng rng(seed);
  const SampleRate fs = 5.0 * kMsps;
  const Complex h0{0.12, 0.07};
  protocol::FrameConfig fc;
  ImpairedCapture cap;
  std::vector<std::vector<bool>> frames;
  for (int f = 0; f < 4; ++f) {
    cap.payloads.push_back(rng.bits(fc.payload_bits));
    frames.push_back(protocol::build_frame(cap.payloads.back(), fc));
  }
  tag::TagConfig tc;
  tag::Tag tag(tc, rng);
  const Seconds duration = 4 * 113.0 / tc.rate + 0.5e-3;
  const auto tx = tag.transmit_epoch(frames, duration, rng);
  const auto n = static_cast<std::size_t>(duration * fs);
  const auto levels = tx.timeline.render(fs, n, 0.12e-6);
  const auto trace = model.generate(h0, fs, duration, rng);
  channel::ChannelModel ch;
  ch.add_tag(h0);
  cap.buffer = ch.compose_time_varying(fs, {levels}, {trace});
  channel::add_awgn(cap.buffer, noise_power, rng);
  return cap;
}

/// Graceful-degradation checks shared by the impairment sweeps: the decode
/// must complete, report finite in-range confidence, and never CRC-validate
/// a payload the tag did not transmit.
void expect_graceful(const DecodeResult& result,
                     const std::vector<std::vector<bool>>& sent) {
  const std::multiset<std::vector<bool>> pool(sent.begin(), sent.end());
  for (const auto& p : result.valid_payloads()) {
    EXPECT_TRUE(pool.count(p) > 0) << "decoder fabricated a CRC-valid frame";
  }
  for (const auto& s : result.streams) {
    const double score = s.confidence.score();
    EXPECT_TRUE(std::isfinite(score));
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    EXPECT_TRUE(std::isfinite(s.confidence.edge_snr_db));
  }
}

TEST(Robustness, PeopleMovementDepthSweep) {
  // Jakes-style fading at increasing depth, with Doppler exaggerated so
  // the coefficient moves *within* the short epoch. Deep fades kill frames
  // — fine — but the decode must stay graceful at every depth.
  for (const double depth : {0.3, 0.6, 1.0, 1.5}) {
    channel::PeopleMovementModel model;
    model.depth = depth;
    model.max_doppler_hz = 1500.0;
    const auto cap = impaired_capture(model, 1e-6, 2024);
    for (const bool fallback : {false, true}) {
      DecoderConfig dc;
      dc.robustness.fallback = fallback;
      const auto result = LfDecoder(dc).decode(cap.buffer);
      expect_graceful(result, cap.payloads);
    }
  }
}

TEST(Robustness, TagRotationSweep) {
  // Rotation from slow to absurd (multiple turns inside one epoch, through
  // antenna-pattern nulls). Same contract: degrade, never fabricate.
  for (const double hz : {1.0, 50.0, 200.0, 600.0}) {
    channel::TagRotationModel model;
    model.rotation_hz = hz;
    const auto cap = impaired_capture(model, 1e-6, 4048);
    for (const bool fallback : {false, true}) {
      DecoderConfig dc;
      dc.robustness.fallback = fallback;
      const auto result = LfDecoder(dc).decode(cap.buffer);
      expect_graceful(result, cap.payloads);
    }
  }
}

TEST(Robustness, FallbackRecoversWhereBaselineIsSilent) {
  // At ~8 dB SNR the 6-sigma edge threshold starts eating the real edges:
  // the baseline decode returns nothing at all. The degraded-mode ladder
  // must recover CRC-clean frames from the same capture — and only
  // genuine ones.
  Rng rng(77);
  const Complex h{0.08, 0.06};
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = channel::noise_power_for_snr(std::norm(h), 8.0);
  channel::ChannelModel ch;
  ch.add_tag(h);
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  std::vector<std::vector<bool>> payloads;
  std::vector<std::vector<bool>> frames;
  for (int f = 0; f < 8; ++f) {
    payloads.push_back(rng.bits(fc.payload_bits));
    frames.push_back(protocol::build_frame(payloads.back(), fc));
  }
  tag::TagConfig tc;
  tag::Tag tag(tc, rng);
  const Seconds duration = 8 * 113.0 / tc.rate + 1e-3;
  const auto tx = tag.transmit_epoch(frames, duration, rng);
  std::vector<signal::StateTimeline> timelines{tx.timeline};
  const auto buffer = receiver.receive_epoch(timelines, duration, rng);

  DecoderConfig off;
  off.robustness.fallback = false;
  const auto baseline = LfDecoder(off).decode(buffer);
  EXPECT_TRUE(baseline.valid_payloads().empty());

  DecoderConfig on;
  const auto rescued = LfDecoder(on).decode(buffer);
  EXPECT_FALSE(rescued.valid_payloads().empty());
  EXPECT_GT(rescued.diagnostics.fallback_passes, 0u);
  expect_graceful(rescued, payloads);
  // Everything the ladder recovered is a genuinely transmitted payload.
  const std::multiset<std::vector<bool>> pool(payloads.begin(),
                                              payloads.end());
  for (const auto& p : rescued.valid_payloads()) {
    EXPECT_EQ(pool.count(p), 1u);
  }
  // A degraded-stage result must say so in its confidence.
  bool saw_degraded = false;
  for (const auto& s : rescued.streams) {
    if (s.confidence.stage != FallbackStage::kPrimary) saw_degraded = true;
  }
  EXPECT_TRUE(saw_degraded);
}

TEST(Robustness, ConfidenceDecreasesWithNoise) {
  // The composite confidence must track injected channel noise
  // monotonically (small tolerance for the score's nonlinear terms) — this
  // is what makes it usable as an operator-facing channel-quality readout.
  const Complex h{0.08, 0.06};
  std::vector<double> scores;
  for (const double snr_db : {24.0, 16.0, 10.0, 6.0}) {
    Rng rng(55);
    reader::ReceiverConfig rc;
    rc.sample_rate = 5.0 * kMsps;
    rc.noise_power = channel::noise_power_for_snr(std::norm(h), snr_db);
    channel::ChannelModel ch;
    ch.add_tag(h);
    reader::Receiver receiver(rc, ch);
    protocol::FrameConfig fc;
    std::vector<std::vector<bool>> frames;
    for (int f = 0; f < 4; ++f) {
      frames.push_back(protocol::build_frame(rng.bits(fc.payload_bits), fc));
    }
    tag::TagConfig tc;
    tag::Tag tag(tc, rng);
    const Seconds duration = 4 * 113.0 / tc.rate + 1e-3;
    const auto tx = tag.transmit_epoch(frames, duration, rng);
    std::vector<signal::StateTimeline> timelines{tx.timeline};
    const auto buffer = receiver.receive_epoch(timelines, duration, rng);
    const auto result = LfDecoder(DecoderConfig{}).decode(buffer);
    double sum = 0.0;
    for (const auto& s : result.streams) sum += s.confidence.score();
    ASSERT_FALSE(result.streams.empty()) << "snr " << snr_db;
    scores.push_back(sum / static_cast<double>(result.streams.size()));
  }
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LE(scores[i], scores[i - 1] + 0.02)
        << "confidence rose from SNR step " << i - 1 << " to " << i;
  }
  EXPECT_LT(scores.back(), scores.front());
}

TEST(Robustness, DecoderIsPureFunction) {
  // Decoding must not mutate the input buffer.
  Rng rng(5);
  signal::SampleBuffer buf(5.0 * kMsps, 20000);
  channel::add_awgn(buf, 0.001, rng);
  buf[777] = {0.25, -0.5};
  const Complex before = buf[777];
  (void)decode(buf);
  EXPECT_EQ(buf[777], before);
}

}  // namespace
}  // namespace lfbs::core

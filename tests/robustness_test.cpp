// Hardening tests: the decoder must degrade gracefully — never crash,
// never fabricate CRC-valid frames — on degenerate, hostile, or absurd
// inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/ask_decoder.h"
#include "channel/noise.h"
#include "core/windowed_decoder.h"

namespace lfbs::core {
namespace {

DecodeResult decode(const signal::SampleBuffer& buffer) {
  return LfDecoder{DecoderConfig{}}.decode(buffer);
}

TEST(Robustness, EmptyBuffer) {
  const auto result = decode(signal::SampleBuffer{});
  EXPECT_TRUE(result.streams.empty());
  EXPECT_EQ(result.diagnostics.edges, 0u);
}

TEST(Robustness, SingleSample) {
  signal::SampleBuffer buf(25.0 * kMsps, 1);
  buf[0] = {1.0, 1.0};
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, AllZeros) {
  const signal::SampleBuffer buf(25.0 * kMsps, 50000);
  const auto result = decode(buf);
  EXPECT_TRUE(result.streams.empty());
}

TEST(Robustness, ConstantDc) {
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = {3.0, -2.0};
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, SingleStepNoStream) {
  // One lonely toggle is not a stream (min_edges).
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 25000; i < buf.size(); ++i) buf[i] = {0.2, 0.1};
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, ExtremeAmplitudes) {
  Rng rng(3);
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(0.0, 1e6), rng.gaussian(0.0, 1e6)};
  }
  const auto result = decode(buf);  // must not crash or hang
  for (const auto& s : result.streams) {
    EXPECT_TRUE(std::isfinite(s.snr_db));
  }
}

TEST(Robustness, TinyAmplitudes) {
  Rng rng(4);
  signal::SampleBuffer buf(25.0 * kMsps, 50000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(0.0, 1e-12), rng.gaussian(0.0, 1e-12)};
  }
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, SquareWaveAtInvalidRate) {
  // A strong periodic toggle at a rate *not* in the plan: the decoder may
  // lock to the nearest valid lattice but must not emit CRC-valid frames.
  signal::SampleBuffer buf(25.0 * kMsps, 100000);
  const double period = 333.3;  // ~75 kbps: not a paper rate
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const bool on = std::fmod(static_cast<double>(i), 2.0 * period) < period;
    buf[i] = on ? Complex{0.1, 0.05} : Complex{0.0, 0.0};
  }
  const auto result = decode(buf);
  EXPECT_TRUE(result.valid_payloads().empty());
}

TEST(Robustness, NoisePlusToneNeverValidatesFrames) {
  // 100 random-noise buffers: the CRC-16 must hold the fabricated-frame
  // rate at (essentially) zero.
  std::size_t fabricated = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(100 + trial);
    signal::SampleBuffer buf(5.0 * kMsps, 30000);
    channel::add_awgn(buf, 0.01, rng);
    fabricated += decode(buf).valid_payloads().size();
  }
  EXPECT_EQ(fabricated, 0u);
}

TEST(Robustness, WindowedDecoderDegenerateInputs) {
  const WindowedDecoder decoder{WindowedDecoderConfig{}};
  EXPECT_TRUE(decoder.decode(signal::SampleBuffer{}).streams.empty());
  signal::SampleBuffer dc(25.0 * kMsps, 2000000);  // 80 ms of DC
  for (std::size_t i = 0; i < dc.size(); ++i) dc[i] = {1.0, 0.0};
  EXPECT_TRUE(decoder.decode(dc).valid_payloads().empty());
}

TEST(Robustness, AskDecoderDegenerateInputs) {
  const baseline::AskDecoder ask{baseline::AskDecoderConfig{}};
  EXPECT_TRUE(ask.decode(signal::SampleBuffer{}).bits.empty());
  signal::SampleBuffer constant(5.0 * kMsps, 10000);
  for (std::size_t i = 0; i < constant.size(); ++i) constant[i] = {0.7, 0.0};
  EXPECT_TRUE(ask.decode(constant).bits.empty());
}

TEST(Robustness, DecoderIsPureFunction) {
  // Decoding must not mutate the input buffer.
  Rng rng(5);
  signal::SampleBuffer buf(5.0 * kMsps, 20000);
  channel::add_awgn(buf, 0.001, rng);
  buf[777] = {0.25, -0.5};
  const Complex before = buf[777];
  (void)decode(buf);
  EXPECT_EQ(buf[777], before);
}

}  // namespace
}  // namespace lfbs::core

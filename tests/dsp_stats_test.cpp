// Tests for src/dsp statistics, filters, and peak detection.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/filters.h"
#include "dsp/peaks.h"
#include "dsp/resample.h"
#include "dsp/stats.h"

namespace lfbs::dsp {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Stats, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Stats, ComplexMean) {
  const std::vector<Complex> xs = {{1, 1}, {3, -1}};
  const Complex m = mean(std::span<const Complex>(xs));
  EXPECT_DOUBLE_EQ(m.real(), 2.0);
  EXPECT_DOUBLE_EQ(m.imag(), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(Stats, Percentiles) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 50.0);
  EXPECT_NEAR(percentile(xs, 25.0), 25.0, 1e-9);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, RmsAndPower) {
  const std::vector<Complex> xs = {{3, 4}, {3, 4}};  // |x| = 5
  EXPECT_DOUBLE_EQ(mean_power(xs), 25.0);
  EXPECT_DOUBLE_EQ(rms(xs), 5.0);
}

TEST(Stats, HistogramBucketsAndClamping) {
  const std::vector<double> xs = {-10.0, 0.1, 0.4, 0.6, 0.9, 99.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -10 clamped into first bucket
  EXPECT_EQ(h[1], 3u);  // 99 clamped into last bucket
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
}

TEST(Filters, MovingAverageFlatSignal) {
  const std::vector<double> xs(50, 3.0);
  const auto out = moving_average(xs, 7);
  for (double v : out) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Filters, MovingAverageSmoothsStep) {
  std::vector<double> xs(20, 0.0);
  for (std::size_t i = 10; i < 20; ++i) xs[i] = 1.0;
  const auto out = moving_average(xs, 5);
  EXPECT_LT(out[9], 1.0);
  EXPECT_GT(out[9], 0.0);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[19], 1.0, 1e-12);
}

TEST(Filters, RemoveDcZeroesMean) {
  std::vector<Complex> xs = {{1, 2}, {3, 2}, {5, 2}};
  const auto out = remove_dc(xs);
  Complex sum{};
  for (const auto& x : out) sum += x;
  EXPECT_NEAR(std::abs(sum), 0.0, 1e-12);
}

TEST(Filters, Diff) {
  const std::vector<double> xs = {1, 4, 9, 16};
  const auto d = diff(xs);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 7.0);
}

TEST(Filters, OnePoleConverges) {
  OnePole lp(0.5);
  double y = 0.0;
  for (int i = 0; i < 32; ++i) y = lp.step(10.0);
  EXPECT_NEAR(y, 10.0, 1e-4);
}

TEST(Filters, OnePolePrimesOnFirstSample) {
  OnePole lp(0.1);
  EXPECT_DOUBLE_EQ(lp.step(5.0), 5.0);
}

TEST(Peaks, FindsIsolatedPeaks) {
  std::vector<double> xs(30, 0.0);
  xs[5] = 2.0;
  xs[20] = 3.0;
  const auto peaks = find_peaks(xs, {.min_value = 1.0, .min_distance = 3});
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 20u);  // sorted by value
  EXPECT_EQ(peaks[1].index, 5u);
}

TEST(Peaks, MinDistanceSuppressesNeighbours) {
  std::vector<double> xs(30, 0.0);
  xs[10] = 3.0;
  xs[12] = 2.5;
  const auto peaks = find_peaks(xs, {.min_value = 1.0, .min_distance = 5});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 10u);
}

TEST(Peaks, CircularDistance) {
  std::vector<double> xs(20, 0.0);
  xs[0] = 3.0;
  xs[19] = 2.0;  // adjacent to 0 in circular mode
  const auto linear = find_peaks(xs, {.min_value = 1.0, .min_distance = 3});
  EXPECT_EQ(linear.size(), 2u);
  const auto circular = find_peaks(
      xs, {.min_value = 1.0, .min_distance = 3, .circular = true});
  EXPECT_EQ(circular.size(), 1u);
}

TEST(Peaks, PlateauReportsOnce) {
  std::vector<double> xs(20, 0.0);
  xs[8] = xs[9] = xs[10] = 2.0;  // flat top
  const auto peaks = find_peaks(xs, {.min_value = 1.0, .min_distance = 1});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 8u);
}

TEST(Peaks, ThresholdFiltersNoise) {
  std::vector<double> xs = {0.1, 0.5, 0.1, 0.9, 0.1};
  const auto peaks = find_peaks(xs, {.min_value = 0.8, .min_distance = 1});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 3u);
}

TEST(Resample, IdentityWhenRatesEqual) {
  std::vector<Complex> xs = {{1, 0}, {2, 0}, {3, 0}};
  const auto out = resample_linear(xs, 1e6, 1e6);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(out[i] - xs[i]), 0.0, 1e-12);
  }
}

TEST(Resample, DownsampleByTwoKeepsEverySecond) {
  std::vector<Complex> xs;
  for (int i = 0; i < 10; ++i) xs.push_back({static_cast<double>(i), 0.0});
  const auto out = resample_linear(xs, 2e6, 1e6);
  ASSERT_GE(out.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(out[i].real(), 2.0 * static_cast<double>(i), 1e-12);
  }
}

TEST(Resample, UpsampleInterpolatesLinearly) {
  const std::vector<Complex> xs = {{0, 0}, {1, 1}};
  const auto out = resample_linear(xs, 1e6, 4e6);
  ASSERT_GE(out.size(), 4u);
  EXPECT_NEAR(out[1].real(), 0.25, 1e-12);
  EXPECT_NEAR(out[2].imag(), 0.5, 1e-12);
}

TEST(Resample, PreservesToneShape) {
  // A slow tone resampled down and back keeps its values.
  std::vector<Complex> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back({std::sin(2 * M_PI * i / 200.0), 0.0});
  }
  const auto down = resample_linear(xs, 10e6, 5e6);
  const auto back = resample_linear(down, 5e6, 10e6);
  double worst = 0.0;
  for (std::size_t i = 0; i < std::min(xs.size(), back.size()); ++i) {
    worst = std::max(worst, std::abs(back[i] - xs[i]));
  }
  EXPECT_LT(worst, 0.01);
}

TEST(Resample, EmptyInput) {
  EXPECT_TRUE(resample_linear({}, 1e6, 2e6).empty());
}

}  // namespace
}  // namespace lfbs::dsp

// Fault-injection and supervision tests for the streaming decode runtime:
// the fault matrix {drop, corrupt, stall, transient-error, early-EOF} ×
// {blocking, drop_when_full}, worker / subscriber exception containment,
// retry-with-backoff, the watchdog, the health state machine — and the
// invariant that a disabled injector stays bit-identical to the serial
// WindowedDecoder path.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <tuple>

#include "channel/channel_model.h"
#include "common/check.h"
#include "core/windowed_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/fault_injector.h"
#include "runtime/runtime.h"
#include "runtime/sample_source.h"
#include "sim/scenario.h"
#include "tag/tag.h"

namespace lfbs::runtime {
namespace {

struct LongCapture {
  signal::SampleBuffer buffer{1e6, std::size_t{0}};
  std::vector<std::vector<bool>> payloads;
};

/// Same multi-window capture construction as runtime_test.cpp.
LongCapture make_capture(std::size_t num_tags, Seconds duration,
                         std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = 150.0;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  LongCapture cap;
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      cap.payloads.push_back(rng.bits(96));
      frames.push_back(protocol::build_frame(cap.payloads.back(), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  cap.buffer = receiver.receive_epoch(timelines, duration, rng);
  return cap;
}

void expect_identical(const core::DecodeResult& a,
                      const core::DecodeResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const auto& sa = a.streams[i];
    const auto& sb = b.streams[i];
    EXPECT_EQ(sa.start_sample, sb.start_sample) << "stream " << i;
    EXPECT_EQ(sa.rate, sb.rate) << "stream " << i;
    EXPECT_EQ(sa.collided, sb.collided) << "stream " << i;
    EXPECT_EQ(sa.edge_vector, sb.edge_vector) << "stream " << i;
    EXPECT_EQ(sa.bits, sb.bits) << "stream " << i;
    ASSERT_EQ(sa.frames.size(), sb.frames.size()) << "stream " << i;
    for (std::size_t f = 0; f < sa.frames.size(); ++f) {
      EXPECT_EQ(sa.frames[f].payload, sb.frames[f].payload);
      EXPECT_EQ(sa.frames[f].valid(), sb.frames[f].valid());
    }
  }
  EXPECT_EQ(a.diagnostics.edges, b.diagnostics.edges);
  EXPECT_EQ(a.diagnostics.groups, b.diagnostics.groups);
  EXPECT_EQ(a.diagnostics.collision_groups, b.diagnostics.collision_groups);
  EXPECT_EQ(a.diagnostics.unresolved_groups,
            b.diagnostics.unresolved_groups);
}

// ---------------------------------------------------------------------------
// The fault matrix: each fault class × each overflow policy. Every cell
// must complete without crash or deadlock, end in the expected health
// state, and report accurate counters against the injector's ground truth.

enum class FaultKind { kDrop, kCorrupt, kStall, kTransientError, kEarlyEof };

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kStall: return "stall";
    case FaultKind::kTransientError: return "transient_error";
    case FaultKind::kEarlyEof: return "early_eof";
  }
  return "?";
}

class FaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<FaultKind, bool>> {};

TEST_P(FaultMatrixTest, CompletesWithAccurateCountersAndHealth) {
  const auto [kind, drop_when_full] = GetParam();
  SCOPED_TRACE(std::string(fault_name(kind)) +
               (drop_when_full ? " / drop_when_full" : " / blocking"));
  const auto cap = make_capture(2, 50e-3, 71);

  FaultPlan plan;
  plan.seed = 100 + static_cast<std::uint64_t>(kind);
  RuntimeConfig rc;
  rc.workers = 2;
  rc.drop_when_full = drop_when_full;
  rc.supervision.retry_backoff_initial = 0.2e-3;
  switch (kind) {
    case FaultKind::kDrop:
      plan.drop_chunk = 0.1;
      break;
    case FaultKind::kCorrupt:
      plan.corrupt_sample = 0.01;
      break;
    case FaultKind::kStall:
      // Stalls well past a (deliberately tight) watchdog timeout, so the
      // watchdog must see and count at least one episode.
      plan.stall = 0.1;
      plan.stall_duration = 30e-3;
      rc.supervision.source_stall_timeout = 2e-3;
      break;
    case FaultKind::kTransientError:
      plan.transient_error = 0.1;
      break;
    case FaultKind::kEarlyEof:
      plan.premature_eof = 0.15;
      break;
  }

  MemorySource mem(cap.buffer, 4096);
  FaultInjectingSource faulty(mem, plan);
  DecodeRuntime rt(rc);
  const auto run = rt.run(faulty);
  const auto& injected = faulty.injected();
  const auto& faults = run.stats.faults;

  // Universal: the run drained and returned; it never failed hard.
  EXPECT_NE(run.stats.health, HealthState::kFailed);
  EXPECT_EQ(run.stats.windows_decoded, run.stats.windows_dispatched);

  switch (kind) {
    case FaultKind::kDrop:
      ASSERT_GT(injected.chunks_dropped, 0u);
      EXPECT_GT(run.stats.samples_gap, 0u);
      EXPECT_EQ(run.stats.health, HealthState::kDegraded);
      break;
    case FaultKind::kCorrupt:
      ASSERT_GT(injected.samples_corrupted, 0u);
      ASSERT_GT(injected.samples_non_finite, 0u);
      // Every non-finite sample the injector produced was scrubbed.
      EXPECT_EQ(faults.samples_scrubbed, injected.samples_non_finite);
      EXPECT_EQ(run.stats.health, HealthState::kDegraded);
      break;
    case FaultKind::kStall:
      ASSERT_GT(injected.stalls, 0u);
      EXPECT_GE(faults.source_stalls, 1u);
      EXPECT_EQ(run.stats.health, HealthState::kDegraded);
      break;
    case FaultKind::kTransientError:
      ASSERT_GT(injected.errors_thrown, 0u);
      EXPECT_EQ(faults.source_transient_errors, injected.errors_thrown);
      EXPECT_EQ(faults.source_retries, injected.errors_thrown);
      EXPECT_EQ(faults.source_failures, 0u);
      EXPECT_EQ(run.stats.health, HealthState::kDegraded);
      if (!drop_when_full) {
        // Retried reads lose nothing: the whole capture still decoded.
        EXPECT_EQ(run.stats.samples_in, cap.buffer.size());
      }
      break;
    case FaultKind::kEarlyEof:
      ASSERT_EQ(injected.premature_eofs, 1u);
      EXPECT_LT(run.stats.samples_in, cap.buffer.size());
      // A clean-looking early end is indistinguishable from end-of-stream
      // at the runtime: health stays healthy, the stream is just shorter.
      EXPECT_NE(run.stats.health, HealthState::kFailed);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, FaultMatrixTest,
    ::testing::Combine(::testing::Values(FaultKind::kDrop,
                                         FaultKind::kCorrupt,
                                         FaultKind::kStall,
                                         FaultKind::kTransientError,
                                         FaultKind::kEarlyEof),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(fault_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_drop_when_full" : "_blocking");
    });

// ---------------------------------------------------------------------------
// Acceptance criterion: 5% chunk loss + 1% sample corruption over a
// multi-epoch ScenarioSource run completes, reports kDegraded with nonzero
// per-fault counters, and still recovers at least one CRC-valid frame.

TEST(FaultInjection, DegradedScenarioStillRecoversFrames) {
  Rng rng(81);
  sim::ScenarioConfig sc;
  sc.num_tags = 6;
  sim::Scenario scenario(sc, rng);
  ScenarioSource::Config config;
  config.epochs = 3;
  ScenarioSource source(scenario, rng, config);

  FaultPlan plan;
  plan.seed = 9;
  plan.drop_chunk = 0.05;
  plan.corrupt_sample = 0.01;
  FaultInjectingSource faulty(source, plan);

  RuntimeConfig rc;
  rc.windowed.decoder = scenario.default_decoder();
  rc.workers = 2;
  DecodeRuntime rt(rc);
  const auto run = rt.run(faulty);

  EXPECT_EQ(run.stats.health, HealthState::kDegraded);
  EXPECT_GT(faulty.injected().chunks_dropped, 0u);
  EXPECT_GT(faulty.injected().samples_corrupted, 0u);
  EXPECT_GT(run.stats.faults.samples_scrubbed, 0u);
  EXPECT_GT(run.stats.samples_gap, 0u);

  std::size_t valid = 0;
  for (const auto& s : run.decode.streams) {
    for (const auto& f : s.frames) {
      if (f.valid()) ++valid;
    }
  }
  EXPECT_GE(valid, 1u);
}

// ---------------------------------------------------------------------------
// The flip side of the acceptance criterion: with the injector disabled
// (default FaultPlan) the runtime output is bit-identical to the serial
// WindowedDecoder at any worker count, and health stays kHealthy.

TEST(FaultInjection, DisabledInjectorIsBitTransparent) {
  const auto cap = make_capture(3, 60e-3, 72);
  core::WindowedDecoderConfig wc;
  const auto serial = core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(serial.streams.empty());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    MemorySource mem(cap.buffer, 10000);
    FaultInjectingSource faulty(mem, FaultPlan{});
    EXPECT_FALSE(faulty.plan().enabled());
    RuntimeConfig rc;
    rc.windowed = wc;
    rc.workers = workers;
    DecodeRuntime rt(rc);
    const auto run = rt.run(faulty);
    expect_identical(serial, run.decode);
    EXPECT_EQ(run.stats.health, HealthState::kHealthy);
    EXPECT_EQ(run.stats.faults.total(), 0u);
    EXPECT_EQ(run.stats.samples_in, cap.buffer.size());
  }
}

// ---------------------------------------------------------------------------
// Supervision internals.

/// A source whose every read fails; transient or fatal per construction.
class BrokenSource : public SampleSource {
 public:
  explicit BrokenSource(bool transient) : transient_(transient) {}
  SampleRate sample_rate() const override { return 1e6; }
  std::optional<SampleChunk> next_chunk() override {
    ++reads_;
    throw SourceError("device unplugged", transient_);
  }
  std::size_t reads() const { return reads_; }

 private:
  bool transient_;
  std::size_t reads_ = 0;
};

TEST(Supervision, ExhaustedRetriesFailTheRunCleanly) {
  BrokenSource source(/*transient=*/true);
  RuntimeConfig rc;
  rc.workers = 2;
  rc.supervision.max_source_retries = 3;
  rc.supervision.retry_backoff_initial = 0.1e-3;
  DecodeRuntime rt(rc);
  const auto run = rt.run(source);
  EXPECT_EQ(run.stats.health, HealthState::kFailed);
  EXPECT_EQ(run.stats.faults.source_failures, 1u);
  EXPECT_EQ(run.stats.faults.source_retries, 3u);
  EXPECT_EQ(source.reads(), 4u);  // initial attempt + 3 retries
  EXPECT_TRUE(run.decode.streams.empty());
}

TEST(Supervision, NonTransientErrorFailsWithoutRetry) {
  BrokenSource source(/*transient=*/false);
  RuntimeConfig rc;
  rc.workers = 1;
  DecodeRuntime rt(rc);
  const auto run = rt.run(source);
  EXPECT_EQ(run.stats.health, HealthState::kFailed);
  EXPECT_EQ(run.stats.faults.source_retries, 0u);
  EXPECT_EQ(source.reads(), 1u);
}

TEST(Supervision, SourceFailureMidStreamKeepsEarlierDecode) {
  // A source that dies partway: everything decoded before the failure is
  // still returned, with health kFailed.
  class DyingSource : public SampleSource {
   public:
    DyingSource(const signal::SampleBuffer& buffer, std::size_t fail_after)
        : inner_(buffer, 4096), fail_after_(fail_after) {}
    SampleRate sample_rate() const override { return inner_.sample_rate(); }
    std::optional<SampleChunk> next_chunk() override {
      if (++reads_ > fail_after_) {
        throw SourceError("link lost", /*transient=*/false);
      }
      return inner_.next_chunk();
    }

   private:
    MemorySource inner_;
    std::size_t fail_after_;
    std::size_t reads_ = 0;
  };

  const auto cap = make_capture(2, 60e-3, 73);
  DyingSource source(cap.buffer, 40);
  RuntimeConfig rc;
  rc.workers = 2;
  DecodeRuntime rt(rc);
  const auto run = rt.run(source);
  EXPECT_EQ(run.stats.health, HealthState::kFailed);
  EXPECT_EQ(run.stats.samples_in, 40u * 4096u);
  EXPECT_GT(run.stats.windows_decoded, 0u);
}

TEST(Supervision, WorkerExceptionIsZeroFilledAndCounted) {
  const auto cap = make_capture(2, 60e-3, 74);
  RuntimeConfig rc;
  rc.workers = 3;
  // Fault drill: window 1 throws in the decode path.
  rc.supervision.decode_fault_hook = [](std::size_t window_index) {
    if (window_index == 1) throw std::runtime_error("drill: decode blew up");
  };
  DecodeRuntime rt(rc);
  const auto run = rt.decode(cap.buffer, 8192);
  EXPECT_EQ(run.stats.health, HealthState::kDegraded);
  EXPECT_EQ(run.stats.faults.worker_exceptions, 1u);
  // The pipeline carried on: every window (including the zero-filled one)
  // was delivered and stitched.
  EXPECT_EQ(run.stats.windows_decoded, run.stats.windows_dispatched);
  EXPECT_GT(run.stats.windows_decoded, 1u);
}

TEST(Supervision, WatchdogDetectsWorkerStall) {
  const auto cap = make_capture(2, 50e-3, 75);
  RuntimeConfig rc;
  rc.workers = 2;
  rc.supervision.worker_stall_timeout = 2e-3;
  rc.supervision.decode_fault_hook = [](std::size_t window_index) {
    if (window_index == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  };
  DecodeRuntime rt(rc);
  const auto run = rt.decode(cap.buffer, 8192);
  EXPECT_GE(run.stats.faults.worker_stalls, 1u);
  EXPECT_EQ(run.stats.health, HealthState::kDegraded);
}

TEST(Supervision, SubscriberExceptionIsIsolatedAndCounted) {
  const auto cap = make_capture(2, 50e-3, 76);
  RuntimeConfig rc;
  rc.workers = 2;
  DecodeRuntime rt(rc);
  std::size_t delivered_after = 0;
  rt.bus().subscribe([](const FrameEvent&) {
    throw std::runtime_error("subscriber bug");
  });
  rt.bus().subscribe([&](const FrameEvent&) { ++delivered_after; });
  const auto run = rt.decode(cap.buffer, 8192);
  ASSERT_GT(run.stats.frames_published, 0u);
  // The throwing subscriber never starved the one after it.
  EXPECT_EQ(delivered_after, run.stats.frames_published);
  EXPECT_EQ(run.stats.faults.subscriber_exceptions,
            run.stats.frames_published);
  EXPECT_EQ(run.stats.health, HealthState::kDegraded);
}

// ---------------------------------------------------------------------------
// Fault-plan spec parsing (the CLI surface of --inject-faults).

TEST(FaultPlanSpec, ParsesEveryKey) {
  const auto plan = parse_fault_plan(
      "seed=42,drop=0.05,truncate=0.02,corrupt=0.01,stall=0.002,"
      "stall-ms=5,error=0.01,eof=0.001");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop_chunk, 0.05);
  EXPECT_DOUBLE_EQ(plan.truncate_chunk, 0.02);
  EXPECT_DOUBLE_EQ(plan.corrupt_sample, 0.01);
  EXPECT_DOUBLE_EQ(plan.stall, 0.002);
  EXPECT_DOUBLE_EQ(plan.stall_duration, 5e-3);
  EXPECT_DOUBLE_EQ(plan.transient_error, 0.01);
  EXPECT_DOUBLE_EQ(plan.premature_eof, 0.001);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanSpec, EmptySpecIsDisabled) {
  EXPECT_FALSE(parse_fault_plan("").enabled());
}

TEST(FaultPlanSpec, RejectsUnknownKeyAndBareWord) {
  EXPECT_THROW(parse_fault_plan("drop=0.1,bogus=1"), CheckError);
  EXPECT_THROW(parse_fault_plan("drop"), CheckError);
}

// ---------------------------------------------------------------------------
// Injector mechanics in isolation (no runtime).

TEST(FaultInjectingSource, DeterministicFromSeed) {
  const auto cap = make_capture(2, 40e-3, 77);
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_chunk = 0.2;
  plan.corrupt_sample = 0.01;
  auto collect = [&] {
    MemorySource mem(cap.buffer, 2048);
    FaultInjectingSource faulty(mem, plan);
    std::vector<SampleChunk> chunks;
    while (auto c = faulty.next_chunk()) chunks.push_back(std::move(*c));
    return std::make_pair(std::move(chunks), faulty.injected());
  };
  const auto [first, first_stats] = collect();
  const auto [second, second_stats] = collect();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first_stats.chunks_dropped, second_stats.chunks_dropped);
  EXPECT_EQ(first_stats.samples_corrupted, second_stats.samples_corrupted);
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].first_sample, second[i].first_sample);
    ASSERT_EQ(first[i].samples.size(), second[i].samples.size());
    for (std::size_t s = 0; s < first[i].samples.size(); ++s) {
      const auto& a = first[i].samples[s];
      const auto& b = second[i].samples[s];
      // NaN != NaN; compare bit-presence of non-finites instead.
      const bool a_fin =
          std::isfinite(a.real()) && std::isfinite(a.imag());
      const bool b_fin =
          std::isfinite(b.real()) && std::isfinite(b.imag());
      ASSERT_EQ(a_fin, b_fin);
      if (a_fin) {
        ASSERT_EQ(a, b);
      }
    }
  }
}

TEST(FaultInjectingSource, TruncationPreservesPositions) {
  const auto cap = make_capture(2, 40e-3, 78);
  FaultPlan plan;
  plan.seed = 6;
  plan.truncate_chunk = 0.5;
  MemorySource mem(cap.buffer, 2048);
  FaultInjectingSource faulty(mem, plan);
  std::uint64_t highest_end = 0;
  std::uint64_t covered = 0;
  while (auto c = faulty.next_chunk()) {
    EXPECT_GE(c->first_sample, highest_end);  // never rewinds
    highest_end = c->first_sample + c->size();
    covered += c->size();
  }
  ASSERT_GT(faulty.injected().chunks_truncated, 0u);
  EXPECT_EQ(covered + faulty.injected().samples_truncated,
            cap.buffer.size());
}

}  // namespace
}  // namespace lfbs::runtime

// Tests for the network chaos layer (src/net/chaos) and the recovery
// machinery it exists to drill: the --chaos spec grammar, seeded fault
// replay, and a fault-class × component matrix — FrameClient under
// refusal / reset / corruption / truncation, RemoteIqSource under reset
// and short transfers, the shard coordinator under link truncation and a
// worker killed mid-run (both a chaos-injected reset and a real SIGKILLed
// worker process), and the relay's replay-ring partition recovery. The
// load-bearing property throughout: every injected fault is either healed
// bit-identically or surfaces as a typed, documented failure — never a
// hang, never silently-wrong output.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <thread>

#include "channel/channel_model.h"
#include "common/check.h"
#include "core/windowed_decoder.h"
#include "net/chaos/chaos.h"
#include "net/federation/relay.h"
#include "net/federation/shard.h"
#include "net/federation/shard_worker.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/iq_ingest.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/frame_bus.h"
#include "runtime/sample_source.h"
#include "tag/tag.h"

namespace lfbs::net {
namespace {

std::uint64_t metric(const char* name) {
  return obs::metrics().counter(name).value();
}

runtime::FrameEvent make_event(std::size_t index, std::uint64_t seed) {
  Rng rng(seed);
  runtime::FrameEvent event;
  event.stream_index = index;
  event.stream_start = rng.uniform(0.0, 1e6);
  event.rate = rng.uniform(1e3, 250e3);
  event.collided = (seed % 2) == 0;
  event.confidence = rng.uniform(0.0, 1.0);
  event.frame.payload = rng.bits(96 + seed % 7);
  event.frame.anchor_ok = true;
  event.frame.crc_ok = (seed % 3) != 0;
  event.epoch_index = seed * 11;
  event.window_index = seed * 13 + 1;
  event.frame_index = seed % 5;
  return event;
}

void expect_event_identical(const runtime::FrameEvent& a,
                            const runtime::FrameEvent& b) {
  EXPECT_EQ(a.stream_index, b.stream_index);
  EXPECT_EQ(a.stream_start, b.stream_start);  // bit-exact doubles
  EXPECT_EQ(a.rate, b.rate);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.frame.payload, b.frame.payload);
  EXPECT_EQ(a.frame.crc_ok, b.frame.crc_ok);
  EXPECT_EQ(a.epoch_index, b.epoch_index);
  EXPECT_EQ(a.window_index, b.window_index);
  EXPECT_EQ(a.frame_index, b.frame_index);
}

TcpConnection accept_one(TcpListener& listener) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    FdHandle fd = listener.accept();
    if (fd.valid()) return TcpConnection(std::move(fd));
    std::vector<PollItem> items{{listener.fd(), true, false}};
    poll_fds(items, 50);
  }
  throw SocketError("peer never connected");
}

// --- spec grammar --------------------------------------------------------

TEST(ChaosSpec, GrammarParsesEveryKey) {
  const ChaosConfig c = parse_chaos_config(
      "seed=7,refuse=0.05,refuse-first=2,reset=0.002,reset-limit=3,"
      "reset-skip=4,stall=0.01,stall-ms=30,partition-in=0.005,"
      "partition-out=0.006,partition-ms=50,truncate=0.02,corrupt=0.001,"
      "delay=0.05,delay-ms=2,jitter-ms=3,scope=both");
  EXPECT_EQ(c.seed, 7u);
  EXPECT_EQ(c.refuse, 0.05);
  EXPECT_EQ(c.refuse_first, 2u);
  EXPECT_EQ(c.reset, 0.002);
  EXPECT_EQ(c.reset_limit, 3u);
  EXPECT_EQ(c.reset_skip, 4u);
  EXPECT_EQ(c.stall, 0.01);
  EXPECT_NEAR(c.stall_duration, 30e-3, 1e-12);
  EXPECT_EQ(c.partition_in, 0.005);
  EXPECT_EQ(c.partition_out, 0.006);
  EXPECT_NEAR(c.partition_duration, 50e-3, 1e-12);
  EXPECT_EQ(c.truncate, 0.02);
  EXPECT_EQ(c.corrupt, 0.001);
  EXPECT_EQ(c.delay, 0.05);
  EXPECT_NEAR(c.delay_base, 2e-3, 1e-12);
  EXPECT_NEAR(c.delay_jitter, 3e-3, 1e-12);
  EXPECT_TRUE(c.on_connect);
  EXPECT_TRUE(c.on_accept);
  EXPECT_TRUE(c.enabled());
  EXPECT_FALSE(ChaosConfig{}.enabled());
}

TEST(ChaosSpec, UnknownKeyAndBadScopeThrowTyped) {
  EXPECT_THROW(parse_chaos_config("bogus=1"), CheckError);
  EXPECT_THROW(parse_chaos_config("scope=sideways"), CheckError);
}

// --- engine determinism & corruption shape -------------------------------

/// A fixed single-threaded echo workload over loopback: the connect-side
/// (tracked) peer reads 64 bytes and writes 32 back, `rounds` times. The
/// op sequence the engine sees is a pure function of its own draws, so a
/// seed must replay the identical fault schedule.
ChaosStats run_fixed_workload(const ChaosConfig& config, int rounds) {
  ChaosEngine engine(config);
  ChaosScope scope(engine);
  TcpListener listener("127.0.0.1", 0);
  TcpConnection tracked =
      TcpConnection::connect("127.0.0.1", listener.port(), 5.0);
  TcpConnection server = accept_one(listener);

  std::uint8_t out[64];
  for (std::size_t i = 0; i < sizeof(out); ++i) {
    out[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  for (int round = 0; round < rounds; ++round) {
    // Server (untracked, no draws) sends the pattern...
    std::size_t sent = 0;
    while (sent < sizeof(out)) {
      const std::ptrdiff_t n = server.write_some(out + sent,
                                                 sizeof(out) - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    // ...the tracked side reads it through the fault gates...
    std::uint8_t in[64];
    std::size_t got = 0;
    while (got < sizeof(in)) {
      const std::ptrdiff_t n = tracked.read_some(in + got, sizeof(in) - got);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // ...and answers through them too.
    std::size_t acked = 0;
    while (acked < 32) {
      const std::ptrdiff_t n = tracked.write_some(in + acked, 32 - acked);
      if (n > 0) {
        acked += static_cast<std::size_t>(n);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::size_t drained = 0;
    while (drained < 32) {
      std::uint8_t buf[32];
      const std::ptrdiff_t n = server.read_some(buf, sizeof(buf));
      if (n > 0) drained += static_cast<std::size_t>(n);
    }
  }
  return engine.stats();
}

TEST(ChaosEngine, SameSeedReplaysTheSameFaultSchedule) {
  const ChaosConfig config = parse_chaos_config(
      "seed=21,delay=0.2,delay-ms=1,stall=0.1,stall-ms=5,truncate=0.5,"
      "corrupt=0.3");
  const ChaosStats a = run_fixed_workload(config, 40);
  const ChaosStats b = run_fixed_workload(config, 40);
  EXPECT_GT(a.faults(), 0u) << "the drill must actually inject";
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.truncations, b.truncations);
  EXPECT_EQ(a.corruptions, b.corruptions);
  EXPECT_EQ(a.resets, b.resets);
  EXPECT_EQ(a.partitions, b.partitions);
}

TEST(ChaosEngine, CorruptionFlipsExactlyOneBitPerRead) {
  ChaosEngine engine(parse_chaos_config("seed=3,corrupt=1"));
  ChaosScope scope(engine);
  TcpListener listener("127.0.0.1", 0);
  TcpConnection tracked =
      TcpConnection::connect("127.0.0.1", listener.port(), 5.0);
  TcpConnection server = accept_one(listener);

  std::uint8_t out[64] = {};
  std::size_t sent = 0;
  while (sent < sizeof(out)) {
    const std::ptrdiff_t n = server.write_some(out + sent, sizeof(out) - sent);
    if (n > 0) sent += static_cast<std::size_t>(n);
  }
  std::uint8_t in[64];
  std::size_t got = 0;
  std::size_t reads = 0;
  while (got < sizeof(in)) {
    const std::ptrdiff_t n = tracked.read_some(in + got, sizeof(in) - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      ++reads;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Each completed read flipped exactly one bit inside its own byte range,
  // so the total damage is one bit per read — no more, no less.
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < sizeof(in); ++i) {
    std::uint8_t diff = in[i] ^ out[i];
    while (diff != 0) {
      flipped += diff & 1u;
      diff = static_cast<std::uint8_t>(diff >> 1);
    }
  }
  EXPECT_EQ(flipped, reads);
  EXPECT_EQ(engine.stats().corruptions, reads);
}

// --- FrameClient under chaos ---------------------------------------------

TEST(ChaosFrameClient, RefusedDialsBackOffThenConnectAndDeliver) {
  ChaosEngine engine(parse_chaos_config("refuse-first=2"));
  ChaosScope scope(engine);
  FrameServerConfig sc;
  FrameServer server(sc);

  std::vector<runtime::FrameEvent> received;
  FrameClientConfig cc;
  cc.port = server.port();
  cc.max_connect_attempts = 5;
  cc.backoff_initial = 0.01;
  cc.backoff_max = 0.02;
  cc.backoff_seed = 42;
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      received.push_back(event);
    };
    const Bye bye = client.run(callbacks);
    EXPECT_EQ(bye.reason, ByeReason::kEndOfStream);
  });

  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 16; ++i) {
    sent.push_back(make_event(static_cast<std::size_t>(i), i * 3 + 1));
    server.publish(sent.back());
  }
  server.shutdown(/*drain=*/true);
  tail.join();

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_event_identical(sent[i], received[i]);
  }
  EXPECT_EQ(engine.stats().connects_refused, 2u);
  EXPECT_EQ(client.counters().connects, 1u);
}

TEST(ChaosFrameClient, ResetConnectionReconnectsAndReplayRingHeals) {
  FrameServerConfig sc;
  sc.replay_frames = 64;
  FrameServer server(sc);

  // The whole batch is published before the subscriber exists: only the
  // replay ring can deliver it, and only to a client that survives the
  // injected kill of its first connection.
  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 10; ++i) {
    sent.push_back(make_event(static_cast<std::size_t>(i), i * 5 + 2));
    server.publish(sent.back());
  }

  ChaosEngine engine(parse_chaos_config("reset=1,reset-limit=1"));
  ChaosScope scope(engine);
  std::vector<runtime::FrameEvent> received;
  FrameClientConfig cc;
  cc.port = server.port();
  cc.filter.replay_recent = true;
  cc.backoff_initial = 0.01;
  cc.backoff_max = 0.02;
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      received.push_back(event);
    };
    const Bye bye = client.run(callbacks);
    EXPECT_EQ(bye.reason, ByeReason::kEndOfStream);
  });

  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  server.shutdown(/*drain=*/true);
  tail.join();

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_event_identical(sent[i], received[i]);
  }
  EXPECT_EQ(engine.stats().resets, 1u);
  // The killed connection never completed its handshake.
  EXPECT_EQ(client.counters().connects, 1u);
  EXPECT_EQ(server.counters().replays_sent, sent.size());
}

TEST(ChaosFrameClient, CorruptionIsRiddenOutUnderTheReconnectFlag) {
  const std::uint64_t resets_before = metric("net.client_protocol_resets");
  const std::uint64_t reconnects_before = metric("net.client_reconnects");

  FrameServerConfig sc;
  FrameServer server(sc);

  // Every read flips a bit while the engine is installed. A flip in a
  // structural field (type byte, length prefix, ack status) kills the
  // connection — as a WireFormatError (protocol reset) or a handshake
  // timeout — while a flip in free text is shrugged off, so the drill
  // pumps stats heartbeats to keep reads (and therefore corruption draws)
  // coming until one bites. Under the reconnect flag every bite is just a
  // dead connection to retry; no frames flow during the drill, so the
  // delivery check below stays clean. Once the drill ends, the next
  // handshake is pristine and the stream must come through bit-identical.
  ChaosEngine engine(parse_chaos_config("seed=5,corrupt=1"));
  std::optional<ChaosScope> scope;
  scope.emplace(engine);

  std::vector<runtime::FrameEvent> received;
  FrameClientConfig cc;
  cc.port = server.port();
  cc.reconnect_on_protocol_error = true;
  cc.connect_timeout = 0.25;
  cc.backoff_initial = 0.01;
  cc.backoff_max = 0.02;
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      received.push_back(event);
    };
    const Bye bye = client.run(callbacks);
    EXPECT_EQ(bye.reason, ByeReason::kEndOfStream);
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (metric("net.client_protocol_resets") == resets_before &&
         metric("net.client_reconnects") == reconnects_before &&
         std::chrono::steady_clock::now() < deadline) {
    server.publish_stats(runtime::RuntimeStats{});  // keep the reads coming
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const bool corruption_bit =
      metric("net.client_protocol_resets") > resets_before ||
      metric("net.client_reconnects") > reconnects_before;
  scope.reset();  // end of the drill: the wire is clean again

  ASSERT_TRUE(server.wait_for_subscriber(10.0));
  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 16; ++i) {
    sent.push_back(make_event(static_cast<std::size_t>(i), i * 9 + 4));
    server.publish(sent.back());
  }
  server.shutdown(/*drain=*/true);
  tail.join();

  EXPECT_TRUE(corruption_bit) << "corruption never bit before the deadline";
  EXPECT_GT(engine.stats().corruptions, 0u);
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_event_identical(sent[i], received[i]);
  }
}

TEST(FrameClient, GarbageStreamWithoutTheFlagThrowsTyped) {
  // The default stance: a malformed server is a loud, typed failure, not
  // something to retry forever.
  TcpListener listener("127.0.0.1", 0);
  std::thread script([&] {
    TcpConnection conn = accept_one(listener);
    std::vector<std::uint8_t> out;
    encode_ack({0, "hello"}, out);
    encode_ack({0, "subscribed"}, out);
    out.push_back(0x7F);  // no such MsgType
    out.insert(out.end(), {0x00, 0x00, 0x00, 0x00});
    std::size_t sent = 0;
    while (sent < out.size()) {
      const std::ptrdiff_t n =
          conn.write_some(out.data() + sent, out.size() - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });

  FrameClientConfig cc;
  cc.port = listener.port();
  FrameClient client(cc);
  EXPECT_THROW(client.run({}), WireFormatError);
  script.join();
}

TEST(ChaosFrameClient, TruncationStallsAndDelaysAreTransparent) {
  // Short transfers, silence windows, and latency never cost correctness:
  // the byte stream is intact, so delivery must stay bit-identical and
  // in order — the faults only show up in the chaos ledger.
  ChaosEngine engine(parse_chaos_config(
      "seed=9,truncate=0.7,stall=0.2,stall-ms=10,delay=0.3,delay-ms=1"));
  ChaosScope scope(engine);
  FrameServerConfig sc;
  FrameServer server(sc);

  std::vector<runtime::FrameEvent> received;
  FrameClientConfig cc;
  cc.port = server.port();
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      received.push_back(event);
    };
    client.run(callbacks);
  });

  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 48; ++i) {
    sent.push_back(make_event(static_cast<std::size_t>(i), i * 7 + 3));
    server.publish(sent.back());
  }
  server.shutdown(/*drain=*/true);
  tail.join();

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_event_identical(sent[i], received[i]);
  }
  EXPECT_GT(engine.stats().truncations, 0u);
  EXPECT_EQ(engine.stats().resets, 0u);
  EXPECT_EQ(engine.stats().corruptions, 0u);
}

// --- remote IQ ingest under chaos ----------------------------------------

signal::SampleBuffer make_noise_capture(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.emplace_back(rng.gaussian(), rng.gaussian());
  }
  return signal::SampleBuffer(5.0 * kMsps, std::move(samples));
}

TEST(ChaosRemoteIq, ShortTransfersAndLatencyStayBitIdentical) {
  const signal::SampleBuffer capture = make_noise_capture(30000, 77);
  ChaosEngine engine(parse_chaos_config(
      "seed=4,truncate=0.6,delay=0.2,delay-ms=1,stall=0.1,stall-ms=5"));
  ChaosScope scope(engine);

  IqIngestConfig ic;
  RemoteIqSource source(ic);
  std::thread pusher([&] {
    runtime::MemorySource local(capture, 4096);
    const std::uint64_t pushed =
        push_iq("127.0.0.1", source.port(), local, /*f64=*/true);
    EXPECT_EQ(pushed, capture.size());
  });

  EXPECT_EQ(source.wait_for_pusher(), capture.sample_rate());
  std::vector<Complex> received;
  while (auto chunk = source.next_chunk()) {
    received.insert(received.end(), chunk->samples.begin(),
                    chunk->samples.end());
  }
  pusher.join();

  ASSERT_EQ(received.size(), capture.size());
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], capture[i]) << "sample " << i;
  }
  EXPECT_GT(engine.stats().faults(), 0u);
  EXPECT_FALSE(source.truncated());
}

TEST(ChaosRemoteIq, ResetConnectionFailsBothSidesLoudly) {
  // The injected kill lands on the pusher's first write: the pusher sees a
  // SocketError (a failed dial, not a typed mid-stream abort — nothing was
  // acked yet) and the ingest side fails non-transient, exactly like a
  // real pusher death during the handshake.
  ChaosEngine engine(parse_chaos_config("reset=1,reset-limit=1"));
  ChaosScope scope(engine);
  const signal::SampleBuffer capture = make_noise_capture(4096, 5);

  IqIngestConfig ic;
  RemoteIqSource source(ic);
  std::thread pusher([&] {
    runtime::MemorySource local(capture, 1024);
    EXPECT_THROW(push_iq("127.0.0.1", source.port(), local, true),
                 SocketError);
  });
  try {
    source.wait_for_pusher();
    FAIL() << "a killed pusher connection must fail the handshake";
  } catch (const runtime::SourceError& e) {
    EXPECT_FALSE(e.transient());
  }
  pusher.join();
  EXPECT_EQ(engine.stats().resets, 1u);
}

TEST(PushAbort, ReceiverDeathMidStreamThrowsTypedPushAborted) {
  static_assert(std::is_base_of_v<SocketError, PushAborted>,
                "PushAborted must stay catchable as SocketError");
  const std::uint64_t aborts_before = metric("net.push_aborts");

  TcpListener listener("127.0.0.1", 0);
  std::thread receiver([&] {
    TcpConnection conn = accept_one(listener);
    MessageReader reader;
    // Consume the hello, ack it, then read just enough of the stream to
    // prove the pusher is past the handshake — and die.
    bool got_hello = false;
    std::uint8_t buf[4096];
    while (!got_hello) {
      const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
      if (n > 0) {
        reader.feed(buf, static_cast<std::size_t>(n));
        while (auto message = reader.next()) {
          if (message->type == MsgType::kHello) got_hello = true;
        }
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::vector<std::uint8_t> ack;
    encode_ack({0, "doomed-ingest"}, ack);
    std::size_t sent = 0;
    while (sent < ack.size()) {
      const std::ptrdiff_t n =
          conn.write_some(ack.data() + sent, ack.size() - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
      if (n > 0) break;  // stream bytes: the ack was consumed
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    conn.close();
  });

  // Big enough that write_all must hit the dead socket mid-stream.
  const signal::SampleBuffer capture = make_noise_capture(400000, 11);
  runtime::MemorySource local(capture, 65536);
  EXPECT_THROW(push_iq("127.0.0.1", listener.port(), local, true),
               PushAborted);
  receiver.join();
  EXPECT_EQ(metric("net.push_aborts"), aborts_before + 1);
}

// --- sharded decode under chaos ------------------------------------------

struct LongCapture {
  signal::SampleBuffer buffer{1e6, std::size_t{0}};
  std::vector<std::vector<bool>> payloads;
};

/// The multi-window capture builder of the federation tests: `tags` tags
/// stream frames for `duration` through the full channel model.
LongCapture make_capture(std::size_t num_tags, Seconds duration,
                         std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = 40.0;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  LongCapture cap;
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      cap.payloads.push_back(rng.bits(96));
      frames.push_back(protocol::build_frame(cap.payloads.back(), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  cap.buffer = receiver.receive_epoch(timelines, duration, rng);
  return cap;
}

void expect_results_identical(const core::DecodeResult& a,
                              const core::DecodeResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const auto& s = a.streams[i];
    const auto& t = b.streams[i];
    EXPECT_EQ(s.start_sample, t.start_sample) << "stream " << i;
    EXPECT_EQ(s.rate, t.rate) << "stream " << i;
    EXPECT_EQ(s.collided, t.collided) << "stream " << i;
    EXPECT_EQ(s.bits, t.bits) << "stream " << i;
    EXPECT_EQ(s.snr_db, t.snr_db) << "stream " << i;
    ASSERT_EQ(s.frames.size(), t.frames.size()) << "stream " << i;
    for (std::size_t f = 0; f < s.frames.size(); ++f) {
      EXPECT_EQ(s.frames[f].payload, t.frames[f].payload);
      EXPECT_EQ(s.frames[f].crc_ok, t.frames[f].crc_ok);
    }
  }
  EXPECT_EQ(a.diagnostics.edges, b.diagnostics.edges);
  EXPECT_EQ(a.diagnostics.groups, b.diagnostics.groups);
  EXPECT_EQ(a.diagnostics.erasures, b.diagnostics.erasures);
}

TEST(ChaosShard, TruncatedAndDelayedLinksStayBitIdentical) {
  const LongCapture cap = make_capture(2, 50e-3, 7);
  core::WindowedDecoderConfig wc;
  const core::DecodeResult serial =
      core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(serial.streams.empty());

  ChaosEngine engine(
      parse_chaos_config("seed=6,truncate=0.4,delay=0.05,delay-ms=1"));
  ChaosScope scope(engine);
  federation::ShardWorker worker_1({"127.0.0.1", 0, "worker-1"});
  federation::ShardWorker worker_2({"127.0.0.1", 0, "worker-2"});
  std::thread t1([&] { worker_1.serve(); });
  std::thread t2([&] { worker_2.serve(); });

  federation::ShardConfig sc;
  sc.windowed = wc;
  sc.workers = {{"127.0.0.1", worker_1.port()},
                {"127.0.0.1", worker_2.port()}};
  federation::ShardedDecoder sharded(sc);
  runtime::MemorySource source(cap.buffer, 8192);
  const federation::ShardedDecoder::Result result = sharded.run(source);
  t1.join();
  t2.join();

  expect_results_identical(serial, result.decode);
  EXPECT_EQ(result.stats.workers_lost, 0u);
  EXPECT_GT(engine.stats().truncations, 0u);
}

TEST(ChaosShard, DeterministicResetKillsOneWorkerAndFailsOverBitIdentically) {
  // reset=1,reset-skip=2,reset-limit=1: the two pool handshake writes are
  // spared, then the very next I/O op's link dies — one worker lost at a
  // deterministic point, every time. Failover must complete the run
  // bit-identically on the survivor.
  const LongCapture cap = make_capture(2, 70e-3, 7);
  core::WindowedDecoderConfig wc;
  const core::DecodeResult serial =
      core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(serial.streams.empty());

  ChaosEngine engine(
      parse_chaos_config("reset=1,reset-skip=2,reset-limit=1"));
  ChaosScope scope(engine);
  federation::ShardWorker worker_1({"127.0.0.1", 0, "worker-1"});
  federation::ShardWorker worker_2({"127.0.0.1", 0, "worker-2"});
  // The killed link's worker sees a mid-session EOF and throws; that is
  // its correct loud-failure behaviour, contained to its thread.
  std::thread t1([&] {
    try {
      worker_1.serve();
    } catch (...) {
    }
  });
  std::thread t2([&] {
    try {
      worker_2.serve();
    } catch (...) {
    }
  });

  federation::ShardConfig sc;
  sc.windowed = wc;
  sc.workers = {{"127.0.0.1", worker_1.port()},
                {"127.0.0.1", worker_2.port()}};
  sc.worker_deadline = 10.0;
  federation::ShardedDecoder sharded(sc);
  runtime::MemorySource source(cap.buffer, 8192);
  const federation::ShardedDecoder::Result result = sharded.run(source);
  t1.join();
  t2.join();

  expect_results_identical(serial, result.decode);
  EXPECT_EQ(result.stats.workers_lost, 1u);
  EXPECT_EQ(engine.stats().resets, 1u);
}

TEST(ChaosShard, ZeroSurvivingWorkersFailLoudly) {
  // One worker, killed mid-run: failover has nowhere to go and must throw
  // the documented "no workers left" SocketError — never hang, never
  // return a partial decode.
  const LongCapture cap = make_capture(1, 50e-3, 3);
  ChaosEngine engine(parse_chaos_config("reset=1,reset-skip=1,reset-limit=1"));
  ChaosScope scope(engine);
  federation::ShardWorker worker_1({"127.0.0.1", 0, "worker-1"});
  std::thread t1([&] {
    try {
      worker_1.serve();
    } catch (...) {
    }
  });

  federation::ShardConfig sc;
  sc.workers = {{"127.0.0.1", worker_1.port()}};
  sc.worker_deadline = 10.0;
  federation::ShardedDecoder sharded(sc);
  runtime::MemorySource source(cap.buffer, 8192);
  try {
    sharded.run(source);
    FAIL() << "zero surviving workers must fail the run";
  } catch (const SocketError& e) {
    EXPECT_NE(std::string(e.what()).find("no workers left"),
              std::string::npos)
        << e.what();
  }
  t1.join();
}

TEST(ShardFailover, SigkilledWorkerProcessFailsOverBitIdentically) {
  // The acceptance drill: a real worker *process* SIGKILLed mid-run. The
  // kill fires once at least two windows are dispatched (so the victim
  // holds an outstanding assignment), the coordinator reassigns its
  // windows to the survivor, and the merged result must still be
  // bit-identical to the serial WindowedDecoder.
  const LongCapture cap = make_capture(3, 70e-3, 7);
  core::WindowedDecoderConfig wc;
  const core::DecodeResult serial =
      core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(serial.streams.empty());

  federation::ShardWorker worker_1({"127.0.0.1", 0, "worker-1"});
  federation::ShardWorker worker_2({"127.0.0.1", 0, "worker-2"});
  std::vector<pid_t> children;
  for (federation::ShardWorker* worker : {&worker_1, &worker_2}) {
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      try {
        worker->serve();
      } catch (...) {
        _exit(2);
      }
      _exit(0);
    }
    children.push_back(pid);
  }
  const pid_t victim = children[1];

  const std::uint64_t windows_before = metric("federation.shard_windows");
  std::atomic<bool> killed{false};
  std::thread killer([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (metric("federation.shard_windows") >= windows_before + 2) {
        kill(victim, SIGKILL);
        killed = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  federation::ShardConfig sc;
  sc.windowed = wc;
  sc.workers = {{"127.0.0.1", worker_1.port()},
                {"127.0.0.1", worker_2.port()}};
  sc.worker_deadline = 10.0;
  federation::ShardedDecoder sharded(sc);
  runtime::MemorySource source(cap.buffer, 8192);
  const federation::ShardedDecoder::Result result = sharded.run(source);
  killer.join();
  ASSERT_TRUE(killed.load());

  int status = 0;
  ASSERT_EQ(waitpid(children[0], &status, 0), children[0]);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "the surviving worker must exit cleanly";
  ASSERT_EQ(waitpid(victim, &status, 0), victim);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  expect_results_identical(serial, result.decode);
  EXPECT_EQ(result.stats.workers_lost, 1u);
  EXPECT_GE(result.stats.windows_reassigned, 1u);
}

// --- relay partition recovery --------------------------------------------

TEST(ChaosRelay, KilledUpstreamLinkHealsThroughTheReplayRing) {
  // Frames are published into the origin's replay ring while the relay's
  // link is down (its first connection is chaos-killed before the
  // subscribe lands). The healed link must resubscribe with replay_recent
  // and deliver every frame downstream exactly once.
  FrameServerConfig sa;
  sa.origin_id = 1;
  sa.replay_frames = 64;
  FrameServer origin(sa);

  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 9; ++i) {
    sent.push_back(make_event(static_cast<std::size_t>(i), i * 13 + 6));
    origin.publish(sent.back());
  }

  ChaosEngine engine(parse_chaos_config("reset=1,reset-limit=1"));
  ChaosScope scope(engine);

  FrameServerConfig sb;
  sb.origin_id = 2;
  sb.replay_frames = 64;
  FrameServer downstream(sb);
  federation::RelayConfig rc;
  rc.gateway_id = 2;
  rc.upstreams = {{"127.0.0.1", origin.port()}};
  federation::FrameRelay relay(rc, downstream);
  relay.start();

  // The relay's first upstream connection dies on its handshake write (the
  // one injected reset); wait for the healed link's resubscribe to pull
  // the ring before attaching the tail, whose own dials are then safe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (origin.counters().replays_sent < sent.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(origin.counters().replays_sent, sent.size())
      << "the healed relay link must replay the ring";

  std::map<std::uint64_t, int> delivered;  // identity key -> count
  FrameClientConfig cc;
  cc.port = downstream.port();
  cc.filter.replay_recent = true;
  FrameClient tail_client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      ++delivered[runtime::frame_identity(event).key()];
    };
    tail_client.run(callbacks);
  });
  ASSERT_TRUE(downstream.wait_for_subscriber(5.0));

  origin.shutdown(/*drain=*/true);  // relay link drains with kEndOfStream
  EXPECT_TRUE(relay.join());
  downstream.shutdown(/*drain=*/true);
  tail.join();

  EXPECT_EQ(engine.stats().resets, 1u);
  EXPECT_EQ(relay.counters().relayed, sent.size());
  ASSERT_EQ(delivered.size(), sent.size());
  for (const auto& event : sent) {
    const auto it = delivered.find(runtime::frame_identity(event).key());
    ASSERT_NE(it, delivered.end());
    EXPECT_EQ(it->second, 1) << "a healed partition must not duplicate";
  }
}

// --- backoff jitter ------------------------------------------------------

TEST(BackoffJitter, FullJitterSpreadsAndReplaysPerSeed) {
  // One full-jitter draw is U[0, cap): the schedule must cover the range
  // (that is what de-lockstops a thundering herd) and must replay exactly
  // for a given seed (that is what keeps chaos drills reproducible).
  Rng rng(42);
  std::vector<Seconds> draws;
  Seconds lo = 1.0, hi = 0.0;
  for (int i = 0; i < 256; ++i) {
    const Seconds d = backoff_jitter_delay(rng, 1.0);
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    draws.push_back(d);
  }
  EXPECT_LT(lo, 0.1) << "full jitter must reach near zero";
  EXPECT_GT(hi, 0.9) << "full jitter must reach near the cap";

  Rng replay(42);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(backoff_jitter_delay(replay, 1.0), draws[i]) << "draw " << i;
  }

  Rng other(43);
  bool diverged = false;
  for (int i = 0; i < 32 && !diverged; ++i) {
    diverged = backoff_jitter_delay(other, 1.0) != draws[i];
  }
  EXPECT_TRUE(diverged) << "distinct seeds must give distinct schedules";
}

}  // namespace
}  // namespace lfbs::net

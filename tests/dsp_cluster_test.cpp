// Tests for k-means, model selection, and 2-D Gaussian fitting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dsp/gaussian.h"
#include "dsp/kmeans.h"

namespace lfbs::dsp {
namespace {

/// Generates `per_cluster` noisy points around each centre.
std::vector<Complex> make_clusters(const std::vector<Complex>& centres,
                                   std::size_t per_cluster, double sigma,
                                   Rng& rng) {
  std::vector<Complex> points;
  for (const Complex& c : centres) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      points.push_back(c + Complex{rng.gaussian(0.0, sigma),
                                   rng.gaussian(0.0, sigma)});
    }
  }
  rng.shuffle(points);
  return points;
}

TEST(KMeans, RecoversWellSeparatedCentres) {
  Rng rng(5);
  const std::vector<Complex> centres = {{0, 0}, {1, 0}, {0, 1}};
  const auto points = make_clusters(centres, 60, 0.03, rng);
  const KMeansResult fit = kmeans(points, 3, rng);
  ASSERT_EQ(fit.centroids.size(), 3u);
  for (const Complex& c : centres) {
    double best = 1e9;
    for (const Complex& f : fit.centroids) best = std::min(best, std::abs(f - c));
    EXPECT_LT(best, 0.05);
  }
}

TEST(KMeans, AssignmentConsistentWithCentroids) {
  Rng rng(6);
  const auto points = make_clusters({{0, 0}, {2, 2}}, 40, 0.05, rng);
  const KMeansResult fit = kmeans(points, 2, rng);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t a = fit.assignment[i];
    for (std::size_t j = 0; j < fit.centroids.size(); ++j) {
      EXPECT_LE(std::norm(points[i] - fit.centroids[a]),
                std::norm(points[i] - fit.centroids[j]) + 1e-12);
    }
  }
}

TEST(KMeans, InertiaDecreasesWithK) {
  Rng rng(7);
  const auto points = make_clusters({{0, 0}, {1, 1}, {2, 0}}, 50, 0.1, rng);
  const double i1 = kmeans(points, 1, rng).inertia;
  const double i3 = kmeans(points, 3, rng).inertia;
  const double i9 = kmeans(points, 9, rng).inertia;
  EXPECT_GT(i1, i3);
  EXPECT_GT(i3, i9);
}

TEST(KMeans, SinglePoint) {
  Rng rng(8);
  const std::vector<Complex> points = {{1.0, -1.0}};
  const KMeansResult fit = kmeans(points, 1, rng);
  EXPECT_NEAR(std::abs(fit.centroids[0] - points[0]), 0.0, 1e-12);
  EXPECT_NEAR(fit.inertia, 0.0, 1e-12);
}

TEST(KMeans, SubsampledFitStillAssignsAllPoints) {
  Rng rng(9);
  const auto points = make_clusters({{0, 0}, {3, 0}}, 5000, 0.05, rng);
  KMeansOptions opts;
  opts.max_fit_points = 500;
  const KMeansResult fit = kmeans(points, 2, rng, opts);
  EXPECT_EQ(fit.assignment.size(), points.size());
  // Centroids still land on the true centres.
  double d0 = 1e9, d1 = 1e9;
  for (const auto& c : fit.centroids) {
    d0 = std::min(d0, std::abs(c - Complex{0, 0}));
    d1 = std::min(d1, std::abs(c - Complex{3, 0}));
  }
  EXPECT_LT(d0, 0.05);
  EXPECT_LT(d1, 0.05);
}

/// Parameterized: select_cluster_count should prefer the true k for
/// well-separated data at several true cluster counts.
class ModelSelectionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModelSelectionSweep, PicksTrueClusterCount) {
  const std::size_t true_k = GetParam();
  Rng rng(100 + true_k);
  std::vector<Complex> centres;
  for (std::size_t i = 0; i < true_k; ++i) {
    centres.push_back(std::polar(1.0, 2.0 * M_PI * i / true_k));
  }
  const auto points = make_clusters(centres, 40, 0.04, rng);
  const std::vector<std::size_t> candidates = {1, 2, 3, 4, 5, 6};
  const ModelSelection sel =
      select_cluster_count(points, candidates, rng);
  EXPECT_EQ(sel.best_k, true_k);
}

INSTANTIATE_TEST_SUITE_P(TrueK, ModelSelectionSweep,
                         ::testing::Values(2u, 3u, 4u, 5u));

TEST(Gaussian2D, FitRecoversParameters) {
  Rng rng(11);
  std::vector<Complex> points;
  for (int i = 0; i < 20000; ++i) {
    points.push_back({rng.gaussian(2.0, 0.5), rng.gaussian(-1.0, 0.2)});
  }
  const Gaussian2D g = fit_gaussian2d(points);
  EXPECT_NEAR(g.mean_i, 2.0, 0.02);
  EXPECT_NEAR(g.mean_q, -1.0, 0.02);
  EXPECT_NEAR(g.sigma_i, 0.5, 0.02);
  EXPECT_NEAR(g.sigma_q, 0.2, 0.01);
  EXPECT_NEAR(g.rho, 0.0, 0.03);
}

TEST(Gaussian2D, LogPdfPeaksAtMean) {
  Gaussian2D g;
  g.mean_i = 1.0;
  g.mean_q = 1.0;
  EXPECT_GT(g.log_pdf({1.0, 1.0}), g.log_pdf({1.5, 1.0}));
  EXPECT_GT(g.log_pdf({1.5, 1.0}), g.log_pdf({3.0, 1.0}));
}

TEST(Gaussian2D, MahalanobisAccountsForAnisotropy) {
  Gaussian2D g;
  g.sigma_i = 1.0;
  g.sigma_q = 0.1;
  // Same Euclidean distance, very different Mahalanobis distance.
  EXPECT_LT(g.mahalanobis2({1.0, 0.0}), g.mahalanobis2({0.0, 1.0}));
}

TEST(Gaussian2D, CorrelatedFit) {
  Rng rng(13);
  std::vector<Complex> points;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.gaussian();
    const double y = 0.8 * x + 0.6 * rng.gaussian();
    points.push_back({x, y});
  }
  const Gaussian2D g = fit_gaussian2d(points);
  EXPECT_GT(g.rho, 0.6);
}

TEST(Gaussian2D, SigmaFloorPreventsDegeneracy) {
  const std::vector<Complex> points = {{1, 1}, {1, 1}, {1, 1}};
  const Gaussian2D g = fit_gaussian2d(points, 1e-3);
  EXPECT_GE(g.sigma_i, 1e-3);
  EXPECT_GE(g.sigma_q, 1e-3);
  EXPECT_TRUE(std::isfinite(g.log_pdf({1, 1})));
}

}  // namespace
}  // namespace lfbs::dsp

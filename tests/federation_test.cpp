// Tests for gateway federation (src/net/federation): frame identity and
// its dedup semantics, the relay's layered loop safety (origin check →
// hop limit → identity dedup) across real TCP topologies — chain, cycle,
// diamond — and the cross-process sharded decode path, whose output must
// be bit-identical to the serial WindowedDecoder on the same capture.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <set>
#include <thread>

#include "channel/channel_model.h"
#include "core/windowed_decoder.h"
#include "net/federation/relay.h"
#include "net/federation/shard.h"
#include "net/federation/shard_worker.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/wire.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/frame_bus.h"
#include "runtime/sample_source.h"
#include "tag/tag.h"

namespace lfbs::net::federation {
namespace {

/// A frame event as a gateway would first publish it: origin unset (the
/// server stamps it), zero hops, full identity coordinates.
runtime::FrameEvent make_event(std::uint64_t seed) {
  Rng rng(seed);
  runtime::FrameEvent event;
  event.stream_index = static_cast<std::size_t>(seed % 7);
  event.stream_start = rng.uniform(0.0, 1e6);
  event.rate = rng.uniform(1e3, 250e3);
  event.collided = (seed % 2) == 0;
  event.confidence = rng.uniform(0.0, 1.0);
  event.frame.payload = rng.bits(96);
  event.frame.anchor_ok = true;
  event.frame.crc_ok = true;
  event.epoch_index = seed / 5;
  event.window_index = seed % 5;
  event.frame_index = seed % 3;
  return event;
}

// --- frame identity ------------------------------------------------------

TEST(FrameIdentity, KeyExcludesTheRelayHeader) {
  const runtime::FrameEvent event = make_event(42);
  const std::uint64_t key = runtime::frame_identity(event).key();

  // origin and hops mutate per hop; identity must not move with them.
  runtime::FrameEvent hopped = event;
  hopped.origin = 9;
  hopped.hops = 3;
  EXPECT_EQ(runtime::frame_identity(hopped).key(), key);
}

TEST(FrameIdentity, KeyDiscriminatesEveryIdentityCoordinate) {
  const runtime::FrameEvent event = make_event(42);
  const std::uint64_t key = runtime::frame_identity(event).key();

  runtime::FrameEvent other = event;
  other.epoch_index += 1;
  EXPECT_NE(runtime::frame_identity(other).key(), key);

  other = event;
  other.window_index += 1;
  EXPECT_NE(runtime::frame_identity(other).key(), key);

  other = event;
  other.frame_index += 1;
  EXPECT_NE(runtime::frame_identity(other).key(), key);

  other = event;
  other.stream_index += 1;
  EXPECT_NE(runtime::frame_identity(other).key(), key);

  other = event;
  other.frame.payload[13] = !other.frame.payload[13];
  EXPECT_NE(runtime::frame_identity(other).key(), key);

  // payload_key covers both content and length.
  protocol::ParsedFrame a = event.frame;
  protocol::ParsedFrame b = event.frame;
  EXPECT_EQ(protocol::payload_key(a), protocol::payload_key(b));
  b.payload.push_back(false);
  EXPECT_NE(protocol::payload_key(a), protocol::payload_key(b));
}

TEST(FrameIdentity, KeySurvivesTheWire) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    runtime::FrameEvent event = make_event(seed);
    event.origin = seed;  // wire carries the relay header too
    event.hops = 2;
    const std::uint64_t key = runtime::frame_identity(event).key();
    std::vector<std::uint8_t> bytes;
    encode_frame(event, bytes);
    MessageReader reader;
    reader.feed(bytes.data(), bytes.size());
    const auto message = reader.next();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(runtime::frame_identity(decode_frame(message->body)).key(), key)
        << "identity must be stable across a TCP hop";
  }
}

TEST(FrameDeduper, DedupsAndAgesFifo) {
  FrameDeduper dedup(4);
  EXPECT_TRUE(dedup.insert(1));
  EXPECT_FALSE(dedup.insert(1));
  EXPECT_TRUE(dedup.insert(2));
  EXPECT_TRUE(dedup.insert(3));
  EXPECT_TRUE(dedup.insert(4));
  EXPECT_EQ(dedup.size(), 4u);
  EXPECT_TRUE(dedup.insert(5));  // ages key 1 out
  EXPECT_EQ(dedup.size(), 4u);
  EXPECT_TRUE(dedup.insert(1));  // forgotten, so new again
  EXPECT_FALSE(dedup.insert(5));
}

// --- relay topologies ----------------------------------------------------

/// Tails a FrameServer on its own thread, collecting every event.
struct Collector {
  FrameClient client;
  std::thread thread;
  std::vector<runtime::FrameEvent> events;
  std::optional<Bye> bye;

  static FrameClientConfig collector_config(std::uint16_t port) {
    FrameClientConfig cc;
    cc.port = port;
    cc.name = "collector";
    return cc;
  }

  explicit Collector(std::uint16_t port) : client(collector_config(port)) {
    thread = std::thread([this] {
      FrameClient::Callbacks callbacks;
      callbacks.on_frame = [this](const runtime::FrameEvent& event) {
        events.push_back(event);
      };
      bye = client.run(callbacks);
    });
  }
  void join() { thread.join(); }
};

bool wait_subscribers(const FrameServer& server, std::size_t count,
                      Seconds timeout = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (server.counters().subscribers >= count) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(FrameRelay, ChainRelaysBitIdenticalWithHopIncrement) {
  // source gateway (origin 1) → relay (gateway 2) → subscriber.
  FrameServerConfig source_config;
  source_config.origin_id = 1;
  FrameServer source(source_config);

  FrameServerConfig relay_server_config;
  FrameServer relay_server(relay_server_config);
  RelayConfig rc;
  rc.gateway_id = 2;
  rc.upstreams = {{"127.0.0.1", source.port()}};
  FrameRelay relay(rc, relay_server);
  relay.start();

  Collector collector(relay_server.port());
  ASSERT_TRUE(wait_subscribers(source, 1));
  ASSERT_TRUE(wait_subscribers(relay_server, 1));

  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 32; ++i) {
    sent.push_back(make_event(i));
    source.publish(sent.back());
  }
  source.shutdown(/*drain=*/true);
  EXPECT_TRUE(relay.join()) << "upstream must end with Bye(kEndOfStream)";
  relay_server.shutdown(/*drain=*/true);
  collector.join();

  ASSERT_EQ(collector.events.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const auto& got = collector.events[i];
    EXPECT_EQ(got.origin, 1u) << "origin survives the relay hop";
    EXPECT_EQ(got.hops, 1u) << "the relay increments hops";
    EXPECT_EQ(got.frame.payload, sent[i].frame.payload);
    EXPECT_EQ(got.stream_start, sent[i].stream_start);  // bit-exact
    EXPECT_EQ(runtime::frame_identity(got).key(),
              runtime::frame_identity(sent[i]).key());
  }
  const auto counters = relay.counters();
  EXPECT_EQ(counters.relayed, sent.size());
  EXPECT_EQ(counters.dup_drops, 0u);
  EXPECT_EQ(counters.loop_drops, 0u);
  EXPECT_EQ(counters.hop_drops, 0u);
}

TEST(FrameRelay, CycleDeliversEachFrameExactlyOnce) {
  // R1 (gateway 2, serves A) ⇄ R2 (gateway 3, serves B): each relays the
  // other's server — a true 2-hop loop. Frames injected at R1 must reach
  // a subscriber of B exactly once, and the copies R2 sends back around
  // the cycle must die at R1's origin check.
  FrameServer server_a{FrameServerConfig{}};
  FrameServer server_b{FrameServerConfig{}};

  RelayConfig c1;
  c1.gateway_id = 2;
  c1.name = "relay-1";
  c1.upstreams = {{"127.0.0.1", server_b.port()}};
  FrameRelay relay_1(c1, server_a);

  RelayConfig c2;
  c2.gateway_id = 3;
  c2.name = "relay-2";
  c2.upstreams = {{"127.0.0.1", server_a.port()}};
  FrameRelay relay_2(c2, server_b);

  relay_1.start();
  relay_2.start();
  Collector collector(server_b.port());
  ASSERT_TRUE(wait_subscribers(server_a, 1));  // relay_2's link
  ASSERT_TRUE(wait_subscribers(server_b, 2));  // relay_1's link + collector

  constexpr std::size_t kFrames = 24;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    relay_1.publish_local(make_event(i));
  }

  // The loop is live until every injected frame has come back around and
  // died at R1's origin check.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (relay_1.counters().loop_drops < kFrames &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server_a.shutdown(/*drain=*/true);
  EXPECT_TRUE(relay_2.join());
  server_b.shutdown(/*drain=*/true);
  relay_1.join();
  collector.join();

  // Exactly once: every frame, no duplicates, by identity key.
  ASSERT_EQ(collector.events.size(), kFrames);
  std::set<std::uint64_t> keys;
  for (const auto& event : collector.events) {
    EXPECT_EQ(event.origin, 2u);
    EXPECT_EQ(event.hops, 1u);
    keys.insert(runtime::frame_identity(event).key());
  }
  EXPECT_EQ(keys.size(), kFrames) << "duplicates crossed the cycle";

  const auto r1 = relay_1.counters();
  const auto r2 = relay_2.counters();
  EXPECT_EQ(r1.local_published, kFrames);
  EXPECT_EQ(r2.relayed, kFrames);
  EXPECT_EQ(r1.loop_drops, kFrames)
      << "every frame must come back around and die at the origin check";
  EXPECT_EQ(r1.relayed, 0u);
}

TEST(FrameRelay, DiamondDedupDropsTheSecondCopy) {
  // top → {left, right} → bottom: the bottom relay hears every frame
  // twice with the same identity and must forward exactly one copy,
  // counting the other as a dup drop.
  FrameServerConfig top_config;
  top_config.origin_id = 1;
  FrameServer top(top_config);
  FrameServer server_l{FrameServerConfig{}};
  FrameServer server_r{FrameServerConfig{}};
  FrameServer server_b{FrameServerConfig{}};

  RelayConfig cl;
  cl.gateway_id = 2;
  cl.upstreams = {{"127.0.0.1", top.port()}};
  FrameRelay left(cl, server_l);
  RelayConfig cr;
  cr.gateway_id = 3;
  cr.upstreams = {{"127.0.0.1", top.port()}};
  FrameRelay right(cr, server_r);
  RelayConfig cb;
  cb.gateway_id = 4;
  cb.upstreams = {{"127.0.0.1", server_l.port()},
                  {"127.0.0.1", server_r.port()}};
  FrameRelay bottom(cb, server_b);

  left.start();
  right.start();
  bottom.start();
  Collector collector(server_b.port());
  ASSERT_TRUE(wait_subscribers(top, 2));
  ASSERT_TRUE(wait_subscribers(server_l, 1));
  ASSERT_TRUE(wait_subscribers(server_r, 1));
  ASSERT_TRUE(wait_subscribers(server_b, 1));

  constexpr std::size_t kFrames = 24;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    top.publish(make_event(i));
  }
  top.shutdown(/*drain=*/true);
  EXPECT_TRUE(left.join());
  EXPECT_TRUE(right.join());
  server_l.shutdown(/*drain=*/true);
  server_r.shutdown(/*drain=*/true);
  EXPECT_TRUE(bottom.join());
  server_b.shutdown(/*drain=*/true);
  collector.join();

  ASSERT_EQ(collector.events.size(), kFrames);
  std::set<std::uint64_t> keys;
  for (const auto& event : collector.events) {
    EXPECT_EQ(event.origin, 1u);
    EXPECT_EQ(event.hops, 2u);
    keys.insert(runtime::frame_identity(event).key());
  }
  EXPECT_EQ(keys.size(), kFrames);

  const auto counters = bottom.counters();
  EXPECT_EQ(counters.relayed, kFrames);
  EXPECT_EQ(counters.dup_drops, kFrames)
      << "the second copy of every frame must be identity-deduped";
  EXPECT_EQ(counters.loop_drops, 0u);
}

TEST(FrameRelay, HopLimitDropsOverTraveledFrames) {
  FrameServerConfig source_config;
  source_config.origin_id = 1;
  FrameServer source(source_config);
  FrameServer server_a{FrameServerConfig{}};
  FrameServer server_b{FrameServerConfig{}};

  RelayConfig c1;
  c1.gateway_id = 2;
  c1.upstreams = {{"127.0.0.1", source.port()}};
  FrameRelay relay_1(c1, server_a);

  RelayConfig c2;
  c2.gateway_id = 3;
  c2.hop_limit = 1;  // frames arriving with hops >= 1 are over-traveled
  c2.upstreams = {{"127.0.0.1", server_a.port()}};
  FrameRelay relay_2(c2, server_b);

  relay_1.start();
  relay_2.start();
  Collector collector(server_b.port());
  ASSERT_TRUE(wait_subscribers(source, 1));
  ASSERT_TRUE(wait_subscribers(server_a, 1));
  ASSERT_TRUE(wait_subscribers(server_b, 1));

  constexpr std::size_t kFrames = 16;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    source.publish(make_event(i));
  }
  source.shutdown(/*drain=*/true);
  EXPECT_TRUE(relay_1.join());
  server_a.shutdown(/*drain=*/true);
  EXPECT_TRUE(relay_2.join());
  server_b.shutdown(/*drain=*/true);
  collector.join();

  EXPECT_EQ(collector.events.size(), 0u)
      << "nothing may out-travel the hop limit";
  EXPECT_EQ(relay_1.counters().relayed, kFrames);
  EXPECT_EQ(relay_2.counters().hop_drops, kFrames);
  EXPECT_EQ(relay_2.counters().relayed, 0u);
}

// --- sharded decode ------------------------------------------------------

struct LongCapture {
  signal::SampleBuffer buffer{1e6, std::size_t{0}};
  std::vector<std::vector<bool>> payloads;
};

/// The multi-window capture builder of the windowed-decoder tests: `tags`
/// tags stream frames for `duration` through the full channel model.
LongCapture make_capture(std::size_t num_tags, Seconds duration,
                         std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = 40.0;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  LongCapture cap;
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      cap.payloads.push_back(rng.bits(96));
      frames.push_back(protocol::build_frame(cap.payloads.back(), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  cap.buffer = receiver.receive_epoch(timelines, duration, rng);
  return cap;
}

void expect_results_identical(const core::DecodeResult& a,
                              const core::DecodeResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const auto& s = a.streams[i];
    const auto& t = b.streams[i];
    EXPECT_EQ(s.start_sample, t.start_sample) << "stream " << i;
    EXPECT_EQ(s.rate, t.rate) << "stream " << i;
    EXPECT_EQ(s.collided, t.collided) << "stream " << i;
    EXPECT_EQ(s.bits, t.bits) << "stream " << i;
    EXPECT_EQ(s.edge_vector, t.edge_vector) << "stream " << i;
    EXPECT_EQ(s.snr_db, t.snr_db) << "stream " << i;
    EXPECT_EQ(s.confidence.edge_snr_db, t.confidence.edge_snr_db);
    EXPECT_EQ(s.confidence.edge_confidence, t.confidence.edge_confidence);
    EXPECT_EQ(s.confidence.path_margin, t.confidence.path_margin);
    EXPECT_EQ(s.confidence.cluster_separation,
              t.confidence.cluster_separation);
    EXPECT_EQ(s.confidence.erasures, t.confidence.erasures);
    EXPECT_EQ(s.confidence.stage, t.confidence.stage);
    ASSERT_EQ(s.frames.size(), t.frames.size()) << "stream " << i;
    for (std::size_t f = 0; f < s.frames.size(); ++f) {
      EXPECT_EQ(s.frames[f].payload, t.frames[f].payload);
      EXPECT_EQ(s.frames[f].anchor_ok, t.frames[f].anchor_ok);
      EXPECT_EQ(s.frames[f].crc_ok, t.frames[f].crc_ok);
    }
  }
  EXPECT_EQ(a.diagnostics.edges, b.diagnostics.edges);
  EXPECT_EQ(a.diagnostics.groups, b.diagnostics.groups);
  EXPECT_EQ(a.diagnostics.collision_groups, b.diagnostics.collision_groups);
  EXPECT_EQ(a.diagnostics.unresolved_groups,
            b.diagnostics.unresolved_groups);
  EXPECT_EQ(a.diagnostics.erasures, b.diagnostics.erasures);
  EXPECT_EQ(a.diagnostics.fallback_passes, b.diagnostics.fallback_passes);
  EXPECT_EQ(a.diagnostics.fallback_recoveries,
            b.diagnostics.fallback_recoveries);
}

TEST(ShardedDecode, MatchesSerialWindowedDecodeAcrossWorkerProcesses) {
  // THE acceptance test: the same capture through (a) the serial
  // WindowedDecoder and (b) two real worker *processes* over TCP must
  // produce bit-identical results, frames included.
  const LongCapture cap = make_capture(3, 70e-3, 7);
  core::WindowedDecoderConfig wc;  // 20 ms windows → 4 of them (tail kept)
  const core::DecodeResult local =
      core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(local.streams.empty()) << "capture must actually decode";

  // Bind listeners pre-fork so the ports are known here; each child owns
  // one worker session and exits when its coordinator says IqEnd.
  ShardWorker worker_1({"127.0.0.1", 0, "worker-1"});
  ShardWorker worker_2({"127.0.0.1", 0, "worker-2"});
  std::vector<pid_t> children;
  for (ShardWorker* worker : {&worker_1, &worker_2}) {
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child process: serve one coordinator, then leave without touching
      // gtest's state.
      try {
        worker->serve();
      } catch (...) {
        _exit(2);
      }
      _exit(0);
    }
    children.push_back(pid);
  }

  ShardConfig sc;
  sc.windowed = wc;
  sc.workers = {{"127.0.0.1", worker_1.port()},
                {"127.0.0.1", worker_2.port()}};
  sc.epoch_index = 5;
  ShardedDecoder sharded(sc);
  std::vector<runtime::FrameEvent> published;
  sharded.bus().subscribe([&](const runtime::FrameEvent& event) {
    published.push_back(event);
  });
  runtime::MemorySource source(cap.buffer, 8192);
  const ShardedDecoder::Result result = sharded.run(source);

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker process must exit cleanly";
  }

  expect_results_identical(local, result.decode);

  // Both workers must actually have decoded: 4 windows round-robin over 2.
  EXPECT_EQ(result.stats.windows_assigned, 4u);
  EXPECT_EQ(result.stats.windows_decoded, 4u);
  EXPECT_EQ(result.stats.samples_in, cap.buffer.size());

  // Published frames carry the stamped identity coordinates.
  std::size_t total_frames = 0;
  for (const auto& stream : result.decode.streams) {
    total_frames += stream.frames.size();
  }
  EXPECT_EQ(result.stats.frames_published, total_frames);
  ASSERT_EQ(published.size(), total_frames);
  for (const auto& event : published) {
    EXPECT_EQ(event.epoch_index, 5u);
  }
}

TEST(ShardedDecode, ShortCaptureTakesThePlainPathBitIdentically) {
  // ≤ 1.5 windows: the coordinator must ship the whole buffer as one
  // short-capture assignment and match WindowedDecoder::decode's plain
  // fall-through exactly. In-process workers (threads) keep this quick.
  const LongCapture cap = make_capture(2, 4e-3, 21);
  core::WindowedDecoderConfig wc;
  const core::DecodeResult local =
      core::WindowedDecoder(wc).decode(cap.buffer);

  ShardWorker worker_1({"127.0.0.1", 0, "worker-1"});
  ShardWorker worker_2({"127.0.0.1", 0, "worker-2"});
  std::thread t1([&] { worker_1.serve(); });
  std::thread t2([&] { worker_2.serve(); });

  ShardConfig sc;
  sc.windowed = wc;
  sc.workers = {{"127.0.0.1", worker_1.port()},
                {"127.0.0.1", worker_2.port()}};
  ShardedDecoder sharded(sc);
  runtime::MemorySource source(cap.buffer, 2048);
  const ShardedDecoder::Result result = sharded.run(source);
  t1.join();
  t2.join();

  expect_results_identical(local, result.decode);
  EXPECT_EQ(result.stats.windows_assigned, 1u);
}

TEST(ShardedDecode, DeadWorkerPoolFailsStrictly) {
  // Strict failure stance: a pool member that isn't there fails the run
  // with SocketError — never a silent hole in the capture.
  std::uint16_t dead_port;
  {
    TcpListener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }
  ShardConfig sc;
  sc.workers = {{"127.0.0.1", dead_port}};
  sc.connect_timeout = 0.5;
  ShardedDecoder sharded(sc);
  const LongCapture cap = make_capture(1, 2e-3, 3);
  runtime::MemorySource source(cap.buffer, 1024);
  EXPECT_THROW(sharded.run(source), SocketError);
}

}  // namespace
}  // namespace lfbs::net::federation

// Tests for src/signal: buffers, waveform synthesis, edge detection, and
// eye-pattern folding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "signal/edge_detector.h"
#include "signal/eye_pattern.h"
#include "signal/noise_tracker.h"
#include "signal/iq_io.h"
#include "signal/sample_buffer.h"
#include "signal/waveform.h"

namespace lfbs::signal {
namespace {

TEST(SampleBuffer, TimeIndexMapping) {
  SampleBuffer buf(1e6, 1000);
  EXPECT_DOUBLE_EQ(buf.duration(), 1e-3);
  EXPECT_EQ(buf.index_of(500e-6), 500);
  EXPECT_DOUBLE_EQ(buf.time_of(250), 250e-6);
  EXPECT_EQ(buf.index_of(-1.0), 0);           // clamped
  EXPECT_EQ(buf.index_of(10.0), 999);         // clamped
}

TEST(SampleBuffer, AccumulateAddsElementwise) {
  SampleBuffer a(1e6, 4), b(1e6, 4);
  a[0] = {1, 1};
  b[0] = {2, -1};
  a.accumulate(b);
  EXPECT_EQ(a[0], (Complex{3, 0}));
}

TEST(SampleBuffer, WindowedMeans) {
  std::vector<Complex> xs(10);
  for (int i = 0; i < 10; ++i) xs[i] = {static_cast<double>(i), 0.0};
  // Mean of [2, 5) = (2+3+4)/3 = 3.
  EXPECT_NEAR(windowed_mean_before(xs, 5, 3).real(), 3.0, 1e-12);
  // Mean of [5, 8) = 6.
  EXPECT_NEAR(windowed_mean_after(xs, 5, 3).real(), 6.0, 1e-12);
  // Clamped at the buffer edge.
  std::size_t count = 0;
  windowed_mean_before(xs, 1, 5, &count);
  EXPECT_EQ(count, 1u);
}

TEST(StateTimeline, LevelsBetweenTransitions) {
  StateTimeline tl(0.0);
  tl.add(1e-3, 1.0);
  tl.add(2e-3, 0.0);
  EXPECT_DOUBLE_EQ(tl.level_at(0.5e-3), 0.0);
  EXPECT_DOUBLE_EQ(tl.level_at(1.5e-3), 1.0);
  EXPECT_DOUBLE_EQ(tl.level_at(2.5e-3), 0.0);
}

TEST(StateTimeline, CoalescesNoOpTransitions) {
  StateTimeline tl(0.0);
  tl.add(1e-3, 0.0);  // no-op
  EXPECT_TRUE(tl.empty());
  tl.add(2e-3, 1.0);
  tl.add(3e-3, 1.0);  // no-op
  EXPECT_EQ(tl.transitions().size(), 1u);
}

TEST(StateTimeline, RenderStepAndRamp) {
  StateTimeline tl(0.0);
  tl.add(50e-6, 1.0);
  const auto levels = tl.render(1e6, 100, 4e-6);  // 4-sample ramp
  EXPECT_DOUBLE_EQ(levels[40], 0.0);
  EXPECT_DOUBLE_EQ(levels[60], 1.0);
  // Mid-ramp sample is strictly between the levels.
  EXPECT_GT(levels[50], 0.2);
  EXPECT_LT(levels[50], 0.8);
}

TEST(StateTimeline, RenderZeroRiseTimeIsSharp) {
  StateTimeline tl(0.0);
  tl.add(50e-6, 1.0);
  const auto levels = tl.render(1e6, 100, 0.0);
  EXPECT_DOUBLE_EQ(levels[49], 0.0);
  EXPECT_DOUBLE_EQ(levels[51], 1.0);
}

TEST(NrzTimeline, EncodesBitsAndReturnsToIdle) {
  const std::vector<bool> bits = {true, true, false, true};
  const StateTimeline tl = nrz_timeline(bits, 1e-3, 1e-4);
  EXPECT_DOUBLE_EQ(tl.level_at(1.05e-3), 1.0);   // bit 0
  EXPECT_DOUBLE_EQ(tl.level_at(1.15e-3), 1.0);   // bit 1 (no edge)
  EXPECT_DOUBLE_EQ(tl.level_at(1.25e-3), 0.0);   // bit 2
  EXPECT_DOUBLE_EQ(tl.level_at(1.35e-3), 1.0);   // bit 3
  EXPECT_DOUBLE_EQ(tl.level_at(1.45e-3), 0.0);   // idle after the frame
}

class EdgeDetectorTest : public ::testing::Test {
 protected:
  /// A buffer with steps of the given complex amplitude at the positions.
  SampleBuffer make_buffer(const std::vector<SampleIndex>& positions,
                           Complex amplitude, double noise, Rng& rng) {
    SampleBuffer buf(1e6, 2000);
    double level = 0.0;
    std::size_t next = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (next < positions.size() &&
          static_cast<SampleIndex>(i) >= positions[next]) {
        level = level > 0.5 ? 0.0 : 1.0;
        ++next;
      }
      buf[i] = amplitude * level +
               Complex{rng.gaussian(0.0, noise), rng.gaussian(0.0, noise)};
    }
    return buf;
  }
};

TEST_F(EdgeDetectorTest, FindsAllEdgesAtPositions) {
  Rng rng(1);
  const std::vector<SampleIndex> positions = {200, 500, 800, 1400};
  const auto buf = make_buffer(positions, {0.1, 0.05}, 1e-4, rng);
  const EdgeDetector det({.window = 6, .guard = 2});
  const auto edges = det.detect(buf);
  ASSERT_EQ(edges.size(), positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_NEAR(edges[i].position, static_cast<double>(positions[i]), 3.0);
  }
}

TEST_F(EdgeDetectorTest, DifferentialSignAlternates) {
  Rng rng(2);
  const auto buf = make_buffer({300, 700}, {0.1, 0.0}, 1e-4, rng);
  const EdgeDetector det({.window = 6, .guard = 2});
  const auto edges = det.detect(buf);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_GT(edges[0].differential.real(), 0.05);   // rising
  EXPECT_LT(edges[1].differential.real(), -0.05);  // falling
}

TEST_F(EdgeDetectorTest, NoEdgesInPureNoise) {
  Rng rng(3);
  SampleBuffer buf(1e6, 2000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(0.0, 1e-3), rng.gaussian(0.0, 1e-3)};
  }
  EdgeDetectorConfig cfg{.window = 6, .guard = 2};
  cfg.min_strength = 1e-3;
  const EdgeDetector det(cfg);
  EXPECT_LE(det.detect(buf).size(), 2u);  // a couple of flukes at most
}

TEST_F(EdgeDetectorTest, DifferentialCancelsStaticBackground) {
  Rng rng(4);
  auto buf = make_buffer({600}, {0.1, -0.02}, 1e-4, rng);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] += Complex{3.0, 1.0};
  const EdgeDetector det({.window = 6, .guard = 2});
  const auto edges = det.detect(buf);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_NEAR(edges[0].differential.real(), 0.1, 0.01);
  EXPECT_NEAR(edges[0].differential.imag(), -0.02, 0.01);
}

TEST_F(EdgeDetectorTest, MinSeparationMergesClosePair) {
  Rng rng(5);
  const auto buf = make_buffer({400, 402}, {0.1, 0.0}, 1e-4, rng);
  EdgeDetectorConfig cfg{.window = 4, .guard = 1};
  cfg.min_separation = 8;
  const EdgeDetector det(cfg);
  EXPECT_EQ(det.detect(buf).size(), 1u);
}

TEST_F(EdgeDetectorTest, AdaptiveThresholdMatchesGlobalOnStationaryNoise) {
  // On a stationary channel the blockwise tracker and the global estimate
  // must agree: same edges, same order, same positions (the PR's
  // bit-identity invariant starts here).
  Rng rng(11);
  const std::vector<SampleIndex> positions = {200, 500, 800, 1400};
  const auto buf = make_buffer(positions, {0.1, 0.05}, 1e-4, rng);
  EdgeDetectorConfig cfg{.window = 6, .guard = 2};
  const auto global = EdgeDetector(cfg).detect(buf);
  cfg.adaptive_threshold = true;
  cfg.noise.block = 256;
  const auto adaptive = EdgeDetector(cfg).detect(buf);
  ASSERT_EQ(adaptive.size(), global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    EXPECT_NEAR(adaptive[i].position, global[i].position, 0.5);
    EXPECT_NEAR(adaptive[i].strength, global[i].strength, 1e-9);
  }
}

TEST(NoiseTracker, ConstantSeriesFloorsThreshold) {
  // A constant |dS| series has zero MAD, so the sigma term vanishes and
  // the threshold must fall back to the absolute floor.
  std::vector<double> series(4096, 0.25);
  const auto estimates =
      NoiseTracker::track_series(series, {.block = 512, .history = 4});
  ASSERT_EQ(estimates.size(), series.size() / 512);
  for (const auto& e : estimates) {
    EXPECT_DOUBLE_EQ(e.floor, 0.25);
    EXPECT_DOUBLE_EQ(e.spread, 0.0);
    EXPECT_DOUBLE_EQ(e.threshold(6.0, 0.4), 0.4);
  }
}

TEST(NoiseTracker, FollowsStepChangeInNoiseLevel) {
  // Quiet first half, 10x louder second half: the causal rolling estimate
  // must rise after the step, and the early estimate must not be dragged
  // up by the loud tail it has not seen yet.
  Rng rng(21);
  std::vector<double> series;
  for (int i = 0; i < 4096; ++i) {
    series.push_back(std::abs(rng.gaussian(0.0, 1e-3)));
  }
  for (int i = 0; i < 4096; ++i) {
    series.push_back(std::abs(rng.gaussian(0.0, 1e-2)));
  }
  const auto estimates =
      NoiseTracker::track_series(series, {.block = 512, .history = 4});
  ASSERT_EQ(estimates.size(), 16u);
  EXPECT_LT(estimates[3].floor, 3e-3);   // still in the quiet half
  EXPECT_GT(estimates[15].floor, 3e-3);  // history fully in the loud half
  EXPECT_GT(estimates[15].floor, 3.0 * estimates[3].floor);
}

TEST(NoiseTracker, IncrementalPushMatchesTrackSeries) {
  Rng rng(22);
  std::vector<double> series;
  for (int i = 0; i < 2048; ++i) {
    series.push_back(std::abs(rng.gaussian(0.0, 5e-3)));
  }
  const NoiseTrackerConfig cfg{.block = 256, .history = 4};
  NoiseTracker tracker(cfg);
  tracker.push(series);
  const auto rolling = tracker.estimate();
  const auto blockwise = NoiseTracker::track_series(series, cfg);
  ASSERT_FALSE(blockwise.empty());
  EXPECT_DOUBLE_EQ(rolling.floor, blockwise.back().floor);
  EXPECT_DOUBLE_EQ(rolling.spread, blockwise.back().spread);
}

TEST(EdgeConfidence, MonotoneAndCalibrated) {
  // Monotone in SNR, and calibrated so a 6-sigma detection (~15.6 dB) is
  // confidently above the erasure region while a marginal 2.5-sigma one
  // (~8 dB) is well inside it.
  double prev = 0.0;
  for (double snr = -10.0; snr <= 40.0; snr += 1.0) {
    const double c = edge_confidence(snr);
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, 1.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
  EXPECT_GT(edge_confidence(15.6), 0.8);
  EXPECT_LT(edge_confidence(8.0), 0.35);
}

TEST(EyePattern, FoldsPeriodicEdgesToOneOffset) {
  std::vector<Edge> edges;
  for (int k = 0; k < 40; ++k) {
    edges.push_back({.position = 37.0 + 250.0 * k, .differential = {}, .strength = 1.0});
  }
  EyePattern eye(250.0, 125);
  eye.fold_edges(edges);
  const auto offsets = eye.peak_offsets(5.0, 10.0);
  ASSERT_GE(offsets.size(), 1u);
  EXPECT_NEAR(offsets[0], 37.0, 3.0);
}

TEST(EyePattern, SeparatesTwoStreams) {
  std::vector<Edge> edges;
  for (int k = 0; k < 40; ++k) {
    edges.push_back({.position = 30.0 + 250.0 * k, .differential = {}, .strength = 1.0});
    edges.push_back({.position = 130.0 + 250.0 * k, .differential = {}, .strength = 1.0});
  }
  EyePattern eye(250.0, 125);
  eye.fold_edges(edges);
  const auto offsets = eye.peak_offsets(5.0, 20.0);
  ASSERT_EQ(offsets.size(), 2u);
  const double lo = std::min(offsets[0], offsets[1]);
  const double hi = std::max(offsets[0], offsets[1]);
  EXPECT_NEAR(lo, 30.0, 3.0);
  EXPECT_NEAR(hi, 130.0, 3.0);
}

TEST(EyePattern, SeriesFoldingSmoothsNoise) {
  Rng rng(6);
  std::vector<double> series(250 * 50, 0.0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = std::abs(rng.gaussian(0.0, 0.1));
    if (i % 250 == 60) series[i] += 1.0;  // periodic pulse
  }
  EyePattern eye(250.0, 250);
  eye.fold_series(series);
  const auto offsets = eye.peak_offsets(3.0, 10.0);
  ASSERT_GE(offsets.size(), 1u);
  EXPECT_NEAR(offsets[0], 60.5, 2.0);
}

TEST(EyePattern, ResetClearsAccumulator) {
  EyePattern eye(100.0, 50);
  std::vector<Edge> edges = {{.position = 10.0, .differential = {}, .strength = 5.0}};
  eye.fold_edges(edges);
  eye.reset();
  for (double v : eye.histogram()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(IqIo, RoundTripPreservesSamples) {
  Rng rng(7);
  SampleBuffer buf(12.5e6, 5000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(), rng.gaussian()};
  }
  const std::string path = ::testing::TempDir() + "roundtrip.lfbsiq";
  save_iq(buf, path);
  const SampleBuffer loaded = load_iq(path);
  ASSERT_EQ(loaded.size(), buf.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), buf.sample_rate());
  for (std::size_t i = 0; i < buf.size(); i += 137) {
    // float32 payload: ~7 significant digits.
    EXPECT_NEAR(loaded[i].real(), buf[i].real(), 1e-6 + 1e-6 * std::abs(buf[i]));
    EXPECT_NEAR(loaded[i].imag(), buf[i].imag(), 1e-6 + 1e-6 * std::abs(buf[i]));
  }
}

TEST(IqIo, EmptyBufferRoundTrip) {
  SampleBuffer buf(1e6, std::size_t{0});
  const std::string path = ::testing::TempDir() + "empty.lfbsiq";
  save_iq(buf, path);
  const SampleBuffer loaded = load_iq(path);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 1e6);
}

TEST(IqIo, RejectsMissingFile) {
  EXPECT_THROW(load_iq("/nonexistent/nope.lfbsiq"), CheckError);
}

TEST(IqIo, RejectsGarbageHeader) {
  const std::string path = ::testing::TempDir() + "garbage.lfbsiq";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an IQ capture at all";
  }
  EXPECT_THROW(load_iq(path), CheckError);
}

// ---------------------------------------------------------------------------
// Malformed-capture hardening: every defect class maps to a typed
// IqFormatError (still a CheckError, so old catch sites hold), and the
// streaming IqReader fails soft on truncation where load_iq fails strict.

namespace {

/// Writes a raw LFBSIQ1 file: header as given, then `samples` float pairs.
void write_capture(const std::string& path, const char magic[8], double fs,
                   std::uint64_t declared, std::size_t samples) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(magic, 8);
  out.write(reinterpret_cast<const char*>(&fs), sizeof fs);
  out.write(reinterpret_cast<const char*>(&declared), sizeof declared);
  for (std::size_t i = 0; i < samples; ++i) {
    const float iq[2] = {static_cast<float>(i), -static_cast<float>(i)};
    out.write(reinterpret_cast<const char*>(iq), sizeof iq);
  }
}

}  // namespace

TEST(IqIo, BadMagicReportsTypedError) {
  const std::string path = ::testing::TempDir() + "badmagic.lfbsiq";
  const char magic[8] = {'N', 'O', 'T', 'L', 'F', 'B', 'S', '\0'};
  write_capture(path, magic, 1e6, 4, 4);
  try {
    load_iq(path);
    FAIL() << "expected IqFormatError";
  } catch (const IqFormatError& e) {
    EXPECT_EQ(e.code(), IqError::kBadMagic);
  }
  EXPECT_THROW(IqReader reader(path), IqFormatError);
}

TEST(IqIo, TruncatedHeaderReportsTypedError) {
  const std::string path = ::testing::TempDir() + "shortheader.lfbsiq";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(kIqMagic, 8);
    const float half_a_rate = 1.0f;  // 4 of the 16 header bytes
    out.write(reinterpret_cast<const char*>(&half_a_rate),
              sizeof half_a_rate);
  }
  try {
    load_iq(path);
    FAIL() << "expected IqFormatError";
  } catch (const IqFormatError& e) {
    EXPECT_EQ(e.code(), IqError::kBadHeader);
  }
}

TEST(IqIo, NonFiniteOrZeroSampleRateIsRejected) {
  const std::string path = ::testing::TempDir() + "badrate.lfbsiq";
  for (const double fs : {0.0, -5e6, std::nan(""),
                          std::numeric_limits<double>::infinity()}) {
    write_capture(path, kIqMagic, fs, 2, 2);
    try {
      load_iq(path);
      FAIL() << "expected IqFormatError for fs=" << fs;
    } catch (const IqFormatError& e) {
      EXPECT_EQ(e.code(), IqError::kBadHeader);
    }
  }
}

TEST(IqIo, MissingFileReportsOpenFailed) {
  try {
    load_iq("/nonexistent/nope.lfbsiq");
    FAIL() << "expected IqFormatError";
  } catch (const IqFormatError& e) {
    EXPECT_EQ(e.code(), IqError::kOpenFailed);
  }
}

TEST(IqIo, TruncatedPayloadStrictLoadThrowsReaderClamps) {
  // Header declares 100 samples; only 60 exist (an interrupted recording).
  const std::string path = ::testing::TempDir() + "truncated.lfbsiq";
  write_capture(path, kIqMagic, 2e6, 100, 60);

  // Whole-file load is strict: the capture is damaged, say so.
  try {
    load_iq(path);
    FAIL() << "expected IqFormatError";
  } catch (const IqFormatError& e) {
    EXPECT_EQ(e.code(), IqError::kTruncated);
  }

  // The streaming reader fails soft: decode what exists, report the rest.
  IqReader reader(path);
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.declared(), 100u);
  EXPECT_EQ(reader.total(), 60u);
  std::vector<Complex> streamed;
  while (reader.read(17, streamed) > 0) {
  }
  ASSERT_EQ(streamed.size(), 60u);
  EXPECT_FLOAT_EQ(static_cast<float>(streamed[59].real()), 59.0f);
}

TEST(IqIo, GarbledHugeCountCannotTriggerHugeAllocation) {
  // A corrupted header declaring ~10^18 samples must be rejected from the
  // actual file size alone — before any payload allocation happens.
  const std::string path = ::testing::TempDir() + "hugecount.lfbsiq";
  write_capture(path, kIqMagic, 1e6, std::uint64_t{1} << 60, 8);
  try {
    load_iq(path);
    FAIL() << "expected IqFormatError";
  } catch (const IqFormatError& e) {
    EXPECT_EQ(e.code(), IqError::kTruncated);
  }
  IqReader reader(path);
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.total(), 8u);  // clamped to what the file holds
}

}  // namespace
}  // namespace lfbs::signal

// Tests for the network gateway (src/net): the LFBW1 wire codec, the
// poll-driven frame server and its slow-consumer policies, the
// reconnecting frame client, and remote IQ ingest. The load-bearing
// properties: frames received over a loopback TCP hop are bit-identical
// to a direct FrameBus subscription, a stalled subscriber can never delay
// a healthy one, and a remotely-ingested capture decodes bit-identically
// to a local one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "channel/channel_model.h"
#include "core/windowed_decoder.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/iq_ingest.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/runtime.h"
#include "runtime/sample_source.h"
#include "tag/tag.h"

namespace lfbs::net {
namespace {

runtime::FrameEvent make_event(std::size_t index, std::uint64_t seed) {
  Rng rng(seed);
  runtime::FrameEvent event;
  event.stream_index = index;
  event.stream_start = rng.uniform(0.0, 1e6);
  event.rate = rng.uniform(1e3, 250e3);
  event.collided = (seed % 2) == 0;
  event.confidence = rng.uniform(0.0, 1.0);
  event.fallback_stage = core::FallbackStage::kRelaxedDetection;
  event.frame.payload = rng.bits(96 + seed % 7);  // odd lengths too
  event.frame.anchor_ok = true;
  event.frame.crc_ok = (seed % 3) != 0;
  event.epoch_index = seed * 11;
  event.window_index = seed * 13 + 1;
  event.frame_index = seed % 5;
  event.origin = seed * 17 + 3;
  event.hops = static_cast<std::uint8_t>(seed % 6);
  return event;
}

void expect_event_identical(const runtime::FrameEvent& a,
                            const runtime::FrameEvent& b) {
  EXPECT_EQ(a.stream_index, b.stream_index);
  EXPECT_EQ(a.stream_start, b.stream_start);  // bit-exact doubles
  EXPECT_EQ(a.rate, b.rate);
  EXPECT_EQ(a.collided, b.collided);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.fallback_stage, b.fallback_stage);
  EXPECT_EQ(a.frame.payload, b.frame.payload);
  EXPECT_EQ(a.frame.anchor_ok, b.frame.anchor_ok);
  EXPECT_EQ(a.frame.crc_ok, b.frame.crc_ok);
  EXPECT_EQ(a.epoch_index, b.epoch_index);
  EXPECT_EQ(a.window_index, b.window_index);
  EXPECT_EQ(a.frame_index, b.frame_index);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.hops, b.hops);
}

/// Feeds a byte vector through a MessageReader and returns every message.
std::vector<Message> reparse(const std::vector<std::uint8_t>& bytes,
                             std::size_t step = 0) {
  MessageReader reader;
  std::vector<Message> out;
  if (step == 0) step = bytes.size();
  for (std::size_t at = 0; at < bytes.size(); at += step) {
    reader.feed(bytes.data() + at, std::min(step, bytes.size() - at));
    while (auto message = reader.next()) out.push_back(std::move(*message));
  }
  return out;
}

TEST(Wire, HelloRoundTrip) {
  Hello hello;
  hello.role = PeerRole::kIqPusher;
  hello.sample_rate = 25e6;
  hello.name = "unit-test pusher";
  std::vector<std::uint8_t> bytes;
  encode_hello(hello, bytes);
  const auto messages = reparse(bytes);
  ASSERT_EQ(messages.size(), 1u);
  ASSERT_EQ(messages[0].type, MsgType::kHello);
  const Hello back = decode_hello(messages[0].body);
  EXPECT_EQ(back.role, PeerRole::kIqPusher);
  EXPECT_EQ(back.sample_rate, 25e6);
  EXPECT_EQ(back.name, hello.name);
}

TEST(Wire, ControlMessagesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  SubscribeFilter filter;
  filter.min_confidence = 0.25;
  filter.min_rate = 1e3;
  filter.max_rate = 200e3;
  filter.crc_valid_only = true;
  encode_subscribe(filter, bytes);
  encode_ack({7, "busy"}, bytes);
  encode_bye({ByeReason::kEvicted, "too slow"}, bytes);
  encode_iq_end({123456, true}, bytes);

  const auto messages = reparse(bytes);
  ASSERT_EQ(messages.size(), 4u);
  const SubscribeFilter f = decode_subscribe(messages[0].body);
  EXPECT_EQ(f.min_confidence, 0.25);
  EXPECT_EQ(f.min_rate, 1e3);
  EXPECT_EQ(f.max_rate, 200e3);
  EXPECT_TRUE(f.crc_valid_only);
  const Ack ack = decode_ack(messages[1].body);
  EXPECT_EQ(ack.status, 7);
  EXPECT_EQ(ack.text, "busy");
  const Bye bye = decode_bye(messages[2].body);
  EXPECT_EQ(bye.reason, ByeReason::kEvicted);
  EXPECT_EQ(bye.text, "too slow");
  const IqEnd end = decode_iq_end(messages[3].body);
  EXPECT_EQ(end.total_samples, 123456u);
  EXPECT_TRUE(end.truncated);
}

TEST(Wire, FrameRoundTripIsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const runtime::FrameEvent event = make_event(seed, seed * 31);
    std::vector<std::uint8_t> bytes;
    encode_frame(event, bytes);
    const auto messages = reparse(bytes);
    ASSERT_EQ(messages.size(), 1u);
    ASSERT_EQ(messages[0].type, MsgType::kFrame);
    expect_event_identical(event, decode_frame(messages[0].body));
  }
}

TEST(Wire, StatsRoundTrip) {
  runtime::RuntimeStats stats;
  stats.health = runtime::HealthState::kDegraded;
  stats.stopped_early = true;
  stats.wall_seconds = 1.5;
  stats.samples_in = 1000000;
  stats.windows_decoded = 42;
  stats.frames_published = 17;
  stats.streams = 5;
  stats.chunks_dropped = 3;
  stats.faults.worker_exceptions = 2;
  stats.mean_confidence = 0.875;
  std::vector<std::uint8_t> bytes;
  encode_stats(to_wire_stats(stats), bytes);
  const auto messages = reparse(bytes);
  ASSERT_EQ(messages.size(), 1u);
  const WireStats back = decode_stats(messages[0].body);
  EXPECT_EQ(back.health,
            static_cast<std::uint8_t>(runtime::HealthState::kDegraded));
  EXPECT_TRUE(back.stopped_early);
  EXPECT_EQ(back.wall_seconds, 1.5);
  EXPECT_EQ(back.samples_in, 1000000u);
  EXPECT_EQ(back.windows_decoded, 42u);
  EXPECT_EQ(back.frames_published, 17u);
  EXPECT_EQ(back.streams, 5u);
  EXPECT_EQ(back.chunks_dropped, 3u);
  EXPECT_GE(back.faults_total, 2u);
  EXPECT_EQ(back.mean_confidence, 0.875);
}

TEST(Wire, IqChunkF64RoundTripIsBitIdentical) {
  Rng rng(9);
  runtime::SampleChunk chunk;
  chunk.first_sample = 0xABCDEF0123ull;
  for (int i = 0; i < 777; ++i) {
    chunk.samples.emplace_back(rng.gaussian(), rng.gaussian());
  }
  std::vector<std::uint8_t> bytes;
  encode_iq_chunk(chunk, /*f64=*/true, bytes);
  const auto messages = reparse(bytes);
  ASSERT_EQ(messages.size(), 1u);
  const runtime::SampleChunk back = decode_iq_chunk(messages[0].body);
  EXPECT_EQ(back.first_sample, chunk.first_sample);
  ASSERT_EQ(back.samples.size(), chunk.samples.size());
  for (std::size_t i = 0; i < chunk.samples.size(); ++i) {
    ASSERT_EQ(back.samples[i], chunk.samples[i]) << "sample " << i;
  }
}

TEST(Wire, IqChunkF32QuantizesToFloatPrecision) {
  runtime::SampleChunk chunk;
  chunk.first_sample = 5;
  chunk.samples.emplace_back(0.1234567890123, -0.9876543210987);
  std::vector<std::uint8_t> bytes;
  encode_iq_chunk(chunk, /*f64=*/false, bytes);
  const auto messages = reparse(bytes);
  const runtime::SampleChunk back = decode_iq_chunk(messages[0].body);
  ASSERT_EQ(back.samples.size(), 1u);
  EXPECT_EQ(back.samples[0].real(),
            static_cast<double>(static_cast<float>(0.1234567890123)));
  EXPECT_EQ(back.samples[0].imag(),
            static_cast<double>(static_cast<float>(-0.9876543210987)));
}

TEST(Wire, MessageReaderHandlesAnyFragmentation) {
  std::vector<std::uint8_t> bytes;
  encode_hello({PeerRole::kFrameSubscriber, 0.0, "frag"}, bytes);
  encode_subscribe({}, bytes);
  encode_frame(make_event(3, 99), bytes);
  encode_bye({ByeReason::kEndOfStream, ""}, bytes);
  for (const std::size_t step : {std::size_t{1}, std::size_t{3},
                                 std::size_t{17}, bytes.size()}) {
    const auto messages = reparse(bytes, step);
    ASSERT_EQ(messages.size(), 4u) << "step " << step;
    EXPECT_EQ(messages[0].type, MsgType::kHello);
    EXPECT_EQ(messages[1].type, MsgType::kSubscribe);
    EXPECT_EQ(messages[2].type, MsgType::kFrame);
    EXPECT_EQ(messages[3].type, MsgType::kBye);
  }
}

TEST(Wire, BadMagicAndBadVersionAreTyped) {
  Hello hello;
  hello.name = "x";
  std::vector<std::uint8_t> bytes;
  encode_hello(hello, bytes);
  auto tampered = bytes;
  tampered[5 + 2] = 'X';  // type + length prefix, then magic
  auto messages = reparse(tampered);
  ASSERT_EQ(messages.size(), 1u);
  try {
    decode_hello(messages[0].body);
    FAIL() << "bad magic must throw";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.code(), WireError::kBadMagic);
  }

  tampered = bytes;
  tampered[5 + sizeof(kWireMagic)] = 0xFF;  // version low byte
  messages = reparse(tampered);
  try {
    decode_hello(messages[0].body);
    FAIL() << "bad version must throw";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.code(), WireError::kBadVersion);
  }
}

TEST(Wire, TruncatedBodyThrowsTyped) {
  std::vector<std::uint8_t> bytes;
  encode_frame(make_event(1, 5), bytes);
  const auto messages = reparse(bytes);
  ASSERT_EQ(messages.size(), 1u);
  auto body = messages[0].body;
  body.resize(body.size() / 2);
  try {
    decode_frame(body);
    FAIL() << "truncated frame must throw";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.code(), WireError::kTruncated);
  }
}

TEST(Wire, OversizedLengthPrefixThrowsBeforeBody) {
  // Type byte + a 64 MiB length prefix: the reader must reject it from
  // the 5-byte header alone, before any body bytes exist to allocate.
  const std::uint8_t header[5] = {
      static_cast<std::uint8_t>(MsgType::kFrame), 0x00, 0x00, 0x00, 0x04};
  MessageReader reader;
  reader.feed(header, sizeof(header));
  try {
    reader.next();
    FAIL() << "oversized prefix must throw";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.code(), WireError::kOversized);
  }
}

TEST(Wire, UnknownTypeByteThrowsTyped) {
  const std::uint8_t header[5] = {0x77, 0x00, 0x00, 0x00, 0x00};
  MessageReader reader;
  reader.feed(header, sizeof(header));
  try {
    reader.next();
    FAIL() << "unknown type must throw";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.code(), WireError::kUnknownType);
  }
}

TEST(Wire, MessageReaderSurvivesAdversarialByteStreams) {
  // Property test for the reader against hostile transports: a valid
  // stream must parse identically under ANY fragmentation, corruption
  // must die as a typed WireFormatError (never a crash or a hang), and
  // no input may make the reader buffer past the 16 MiB message bound.
  std::vector<std::uint8_t> valid;
  std::vector<std::size_t> boundaries;  // offset of each message header
  boundaries.push_back(valid.size());
  encode_hello({PeerRole::kFrameSubscriber, 0.0, "prop"}, valid);
  boundaries.push_back(valid.size());
  encode_subscribe({}, valid);
  for (std::uint64_t i = 0; i < 8; ++i) {
    boundaries.push_back(valid.size());
    encode_frame(make_event(static_cast<std::size_t>(i), i * 3 + 1), valid);
  }
  boundaries.push_back(valid.size());
  encode_bye({ByeReason::kEndOfStream, ""}, valid);
  const auto reference = reparse(valid);
  ASSERT_EQ(reference.size(), boundaries.size());

  std::size_t largest_body = 0;
  for (const auto& m : reference) {
    largest_body = std::max(largest_body, m.body.size());
  }

  // Randomized fragmentation: 64 seeds, fragment sizes 1..97 bytes.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    MessageReader reader;
    std::vector<Message> got;
    std::size_t at = 0;
    std::size_t max_buffered = 0;
    while (at < valid.size()) {
      const std::size_t step =
          1 + static_cast<std::size_t>(rng.uniform(0.0, 96.0));
      const std::size_t take = std::min(step, valid.size() - at);
      reader.feed(valid.data() + at, take);
      at += take;
      max_buffered = std::max(max_buffered, reader.buffered());
      while (auto message = reader.next()) got.push_back(std::move(*message));
    }
    ASSERT_EQ(got.size(), reference.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].type, reference[i].type) << "seed " << seed;
      EXPECT_EQ(got[i].body, reference[i].body) << "seed " << seed;
    }
    // Buffering stays bounded by one in-flight message plus the fragment
    // that completed it — the reader holds no history.
    EXPECT_LE(max_buffered, largest_body + 5 + 97) << "seed " << seed;
  }

  // Interleaved garbage: corrupt the type byte at a random message
  // boundary. Everything before the corruption parses; the corrupted
  // header dies with kUnknownType.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed * 101);
    const std::size_t victim = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(boundaries.size()) - 0.001));
    auto tampered = valid;
    tampered[boundaries[victim]] = 0x7F;  // no such MsgType
    MessageReader reader;
    std::size_t parsed = 0;
    try {
      std::size_t at = 0;
      while (at < tampered.size()) {
        const std::size_t take = std::min<std::size_t>(
            1 + static_cast<std::size_t>(rng.uniform(0.0, 30.0)),
            tampered.size() - at);
        reader.feed(tampered.data() + at, take);
        at += take;
        while (reader.next()) ++parsed;
      }
      FAIL() << "corrupted type byte must throw (seed " << seed << ")";
    } catch (const WireFormatError& e) {
      EXPECT_EQ(e.code(), WireError::kUnknownType);
      EXPECT_EQ(parsed, victim) << "messages before the corruption parse";
    }
  }

  // Truncated length prefix: a partial header never yields a message and
  // never over-buffers — the reader just waits for the rest.
  for (std::size_t cut = 1; cut < 5; ++cut) {
    MessageReader reader;
    reader.feed(valid.data(), cut);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.buffered(), cut);
  }

  // Hostile length prefixes: anything past kMaxMessageBody dies from the
  // 5-byte header alone — the reader must never allocate toward the
  // declared size. Try the whole top range including UINT32_MAX.
  constexpr std::uint32_t kBound = static_cast<std::uint32_t>(kMaxMessageBody);
  for (const std::uint32_t declared : {kBound + 1, kBound * 2, 0xFFFFFFFFu}) {
    const std::uint8_t header[5] = {
        static_cast<std::uint8_t>(MsgType::kFrame),
        static_cast<std::uint8_t>(declared & 0xFF),
        static_cast<std::uint8_t>((declared >> 8) & 0xFF),
        static_cast<std::uint8_t>((declared >> 16) & 0xFF),
        static_cast<std::uint8_t>((declared >> 24) & 0xFF)};
    MessageReader reader;
    reader.feed(header, sizeof(header));
    try {
      reader.next();
      FAIL() << "length " << declared << " must throw";
    } catch (const WireFormatError& e) {
      EXPECT_EQ(e.code(), WireError::kOversized);
    }
    EXPECT_LE(reader.buffered(), sizeof(header))
        << "reader must not allocate toward a hostile length";
  }
}

TEST(Wire, SubscribeFilterGatesOnConfidenceRateAndCrc) {
  runtime::FrameEvent event = make_event(0, 2);
  event.confidence = 0.5;
  event.rate = 100e3;
  event.frame.crc_ok = false;

  SubscribeFilter all;
  EXPECT_TRUE(all.accepts(event));

  SubscribeFilter confident;
  confident.min_confidence = 0.6;
  EXPECT_FALSE(confident.accepts(event));
  confident.min_confidence = 0.5;
  EXPECT_TRUE(confident.accepts(event));

  SubscribeFilter banded;
  banded.min_rate = 150e3;
  EXPECT_FALSE(banded.accepts(event));
  banded.min_rate = 0.0;
  banded.max_rate = 50e3;
  EXPECT_FALSE(banded.accepts(event));

  SubscribeFilter clean;
  clean.crc_valid_only = true;
  EXPECT_FALSE(clean.accepts(event));
  event.frame.crc_ok = true;
  EXPECT_TRUE(clean.accepts(event));
}

// --- server / client loopback -------------------------------------------

TEST(FrameServerClient, LoopbackDeliveryIsBitIdentical) {
  // Publish a set of frames through the server while a FrameClient tails
  // it over real TCP; the client must observe every event, in order, with
  // every field bit-identical — and the final stats digest must let it
  // prove completeness.
  FrameServerConfig sc;
  FrameServer server(sc);

  std::vector<runtime::FrameEvent> received;
  std::atomic<bool> done{false};
  FrameClientConfig cc;
  cc.port = server.port();
  FrameClient client(cc);
  std::optional<WireStats> final_stats;
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      received.push_back(event);
    };
    callbacks.on_stats = [&](const WireStats& stats) { final_stats = stats; };
    const Bye bye = client.run(callbacks);
    EXPECT_EQ(bye.reason, ByeReason::kEndOfStream);
    done = true;
  });

  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 64; ++i) {
    sent.push_back(make_event(static_cast<std::size_t>(i), i * 7 + 1));
    server.publish(sent.back());
  }
  runtime::RuntimeStats stats;
  stats.frames_published = sent.size();
  server.publish_stats(stats);
  server.shutdown(/*drain=*/true);
  tail.join();
  ASSERT_TRUE(done.load());

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_event_identical(sent[i], received[i]);
  }
  ASSERT_TRUE(final_stats.has_value());
  EXPECT_EQ(final_stats->frames_published, sent.size());
  EXPECT_EQ(server.counters().frames_sent, sent.size());
  EXPECT_EQ(server.counters().queue_drops, 0u);
}

TEST(FrameServerClient, ServerSideFilterNarrowsDelivery) {
  FrameServerConfig sc;
  FrameServer server(sc);

  std::vector<runtime::FrameEvent> received;
  FrameClientConfig cc;
  cc.port = server.port();
  cc.filter.crc_valid_only = true;
  cc.filter.min_confidence = 0.5;
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      received.push_back(event);
    };
    client.run(callbacks);
  });

  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    runtime::FrameEvent event = make_event(static_cast<std::size_t>(i), i);
    if (event.frame.crc_ok && event.confidence >= 0.5) ++expected;
    server.publish(event);
  }
  server.shutdown(/*drain=*/true);
  tail.join();

  ASSERT_GT(expected, 0u);  // seed choice must exercise both sides
  ASSERT_LT(expected, 32u);
  EXPECT_EQ(received.size(), expected);
  for (const auto& event : received) {
    EXPECT_TRUE(event.frame.crc_ok);
    EXPECT_GE(event.confidence, 0.5);
  }
}

/// A raw subscriber that completes the handshake and then never reads —
/// the deliberately stalled client of the slow-consumer tests.
struct StalledSubscriber {
  TcpConnection conn;

  explicit StalledSubscriber(std::uint16_t port)
      : conn(TcpConnection::connect("127.0.0.1", port, 5.0)) {
    std::vector<std::uint8_t> bytes;
    encode_hello({PeerRole::kFrameSubscriber, 0.0, "stalled"}, bytes);
    encode_subscribe({}, bytes);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const std::ptrdiff_t n =
          conn.write_some(bytes.data() + sent, bytes.size() - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
  }
};

TEST(FrameServerClient, StalledClientDropsOldestWithoutDelayingHealthy) {
  FrameServerConfig sc;
  // Queue bound sized so a *reading* client has real slack under CI load,
  // while the stalled client (which reads nothing) still overflows it long
  // before 512 frames: 64 queued + a few dozen in the 2 KiB kernel buffer.
  sc.send_queue_messages = 64;
  sc.send_buffer_bytes = 2048;  // tiny SO_SNDBUF: the kernel can't hide it
  sc.slow_consumer = SlowConsumerPolicy::kDropOldest;
  sc.drain_timeout = 2.0;
  FrameServer server(sc);

  StalledSubscriber stalled(server.port());

  std::atomic<std::size_t> healthy_frames{0};
  FrameClientConfig cc;
  cc.port = server.port();
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent&) {
      ++healthy_frames;
    };
    client.run(callbacks);
  });

  // Both clients subscribed (stalled one races its handshake in).
  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.counters().subscribers < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.counters().subscribers, 2u);

  // Publish far more than queue + socket buffer can hold, paced just
  // enough that a *reading* client keeps up — so any loss at the healthy
  // client would indict publish(), not the test's own burst rate. The
  // stalled client saturates its 2 KiB kernel buffer and 8-message queue
  // almost immediately regardless of pacing.
  constexpr std::size_t kFrames = 512;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    server.publish(make_event(static_cast<std::size_t>(i), i));
    if (i % 2 == 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Seconds publish_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Pacing accounts for ~256 ms; anything near drain_timeout would mean
  // publish() blocked on the stalled client's socket.
  EXPECT_LT(publish_seconds, 2.0) << "publish must not block on the "
                                     "stalled client";

  // Unstall by closing; the healthy client still gets every frame.
  server.shutdown(/*drain=*/true);
  stalled.conn.close();
  tail.join();

  EXPECT_EQ(healthy_frames.load(), kFrames);
  const auto counters = server.counters();
  EXPECT_GT(counters.queue_drops, 0u);
  EXPECT_EQ(counters.evictions, 0u);
}

TEST(FrameServerClient, StalledClientIsEvictedUnderEvictPolicy) {
  FrameServerConfig sc;
  sc.send_queue_messages = 64;  // see the kDropOldest test above
  sc.send_buffer_bytes = 2048;
  sc.slow_consumer = SlowConsumerPolicy::kEvict;
  sc.drain_timeout = 5.0;
  FrameServer server(sc);

  StalledSubscriber stalled(server.port());

  std::atomic<std::size_t> healthy_frames{0};
  FrameClientConfig cc;
  cc.port = server.port();
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent&) {
      ++healthy_frames;
    };
    client.run(callbacks);
  });

  ASSERT_TRUE(server.wait_for_subscriber(5.0));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.counters().subscribers < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.counters().subscribers, 2u);

  constexpr std::size_t kFrames = 512;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    server.publish(make_event(static_cast<std::size_t>(i), i));
    if (i % 2 == 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown(/*drain=*/true);
  tail.join();

  EXPECT_EQ(healthy_frames.load(), kFrames);
  const auto counters = server.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.queue_drops, 0u);
}


TEST(FrameClient, EvictedClientReconnectsAndResubscribes) {
  // Deterministic evict→reconnect→resubscribe exercise against a raw
  // scripted server. (A real overflow eviction writes its Bye into a
  // jammed socket and usually loses it, so the client sees plain EOF —
  // both the Bye(kEvicted) path and the EOF path are driven here.) The
  // wire itself proves the resubscribe: each reconnect handshake must
  // carry the *current* filter, including one set mid-run.
  const std::uint64_t resubscribes_before =
      obs::metrics().counter("net.client_resubscribes").value();
  const std::uint64_t evictions_before =
      obs::metrics().counter("net.client_evictions").value();

  TcpListener listener("127.0.0.1", 0);

  FrameClientConfig cc;
  cc.port = listener.port();
  cc.reconnect_on_evict = true;
  FrameClient client(cc);
  std::atomic<std::size_t> frames_seen{0};
  std::optional<Bye> final_bye;
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent&) { ++frames_seen; };
    final_bye = client.run(callbacks);
  });

  const auto accept_one = [&]() -> TcpConnection {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      FdHandle fd = listener.accept();
      if (fd.valid()) return TcpConnection(std::move(fd));
      std::vector<PollItem> items{{listener.fd(), true, false}};
      poll_fds(items, 50);
    }
    throw SocketError("client never (re)connected");
  };
  const auto read_message = [](TcpConnection& conn,
                               MessageReader& reader) -> Message {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (auto message = reader.next()) return std::move(*message);
      std::vector<PollItem> items{{conn.fd(), true, false}};
      poll_fds(items, 50);
      std::uint8_t buf[4096];
      const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
      if (n > 0) reader.feed(buf, static_cast<std::size_t>(n));
      if (n == 0) throw SocketError("client hung up mid-handshake");
    }
    throw SocketError("timed out waiting for a client message");
  };
  const auto send = [](TcpConnection& conn,
                       const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const std::ptrdiff_t n =
          conn.write_some(bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      } else if (n == -1) {
        std::vector<PollItem> items{{conn.fd(), false, true}};
        poll_fds(items, 50);
      } else {
        throw SocketError("client hung up mid-write");
      }
    }
  };

  // --- connection 1: normal handshake, one frame, then a scripted
  // eviction. The filter changes mid-session; connection 2 must see it.
  {
    TcpConnection conn = accept_one();
    MessageReader reader;
    Message m = read_message(conn, reader);
    ASSERT_EQ(m.type, MsgType::kHello);
    EXPECT_EQ(decode_hello(m.body).role, PeerRole::kFrameSubscriber);
    m = read_message(conn, reader);
    ASSERT_EQ(m.type, MsgType::kSubscribe);
    EXPECT_FALSE(decode_subscribe(m.body).crc_valid_only);
    std::vector<std::uint8_t> out;
    encode_ack({0, "hello"}, out);
    encode_ack({0, "subscribed"}, out);
    encode_frame(make_event(0, 1), out);
    send(conn, out);

    SubscribeFilter clean;
    clean.crc_valid_only = true;
    client.set_filter(clean);
    EXPECT_TRUE(client.filter().crc_valid_only);

    out.clear();
    encode_bye({ByeReason::kEvicted, "scripted eviction"}, out);
    send(conn, out);
  }

  // --- connection 2: the evict-path reconnect. The handshake must carry
  // the filter set mid-run, not the construction-time one.
  {
    TcpConnection conn = accept_one();
    MessageReader reader;
    Message m = read_message(conn, reader);
    ASSERT_EQ(m.type, MsgType::kHello);
    m = read_message(conn, reader);
    ASSERT_EQ(m.type, MsgType::kSubscribe);
    EXPECT_TRUE(decode_subscribe(m.body).crc_valid_only)
        << "evict-path reconnect must re-send the current filter";
    std::vector<std::uint8_t> out;
    encode_ack({0, "hello"}, out);
    encode_ack({0, "subscribed"}, out);
    encode_frame(make_event(1, 2), out);
    send(conn, out);
  }  // abrupt close, no Bye: drives the dead-connection reconnect path

  // --- connection 3: the EOF-path reconnect. Filter must still hold.
  {
    TcpConnection conn = accept_one();
    MessageReader reader;
    Message m = read_message(conn, reader);
    ASSERT_EQ(m.type, MsgType::kHello);
    m = read_message(conn, reader);
    ASSERT_EQ(m.type, MsgType::kSubscribe);
    EXPECT_TRUE(decode_subscribe(m.body).crc_valid_only)
        << "EOF-path reconnect must re-send the current filter";
    std::vector<std::uint8_t> out;
    encode_ack({0, "hello"}, out);
    encode_ack({0, "subscribed"}, out);
    encode_frame(make_event(2, 3), out);
    encode_bye({ByeReason::kEndOfStream, "done"}, out);
    send(conn, out);
  }

  tail.join();
  ASSERT_TRUE(final_bye.has_value());
  EXPECT_EQ(final_bye->reason, ByeReason::kEndOfStream);
  EXPECT_EQ(frames_seen.load(), 3u);
  const auto counters = client.counters();
  EXPECT_EQ(counters.connects, 3u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.resubscribes, 2u);
  EXPECT_EQ(counters.reconnects, 2u);
  EXPECT_EQ(obs::metrics().counter("net.client_resubscribes").value(),
            resubscribes_before + 2);
  EXPECT_EQ(obs::metrics().counter("net.client_evictions").value(),
            evictions_before + 1);
}

TEST(FrameServer, GarbageSpeakerIsClosedAsProtocolError) {
  FrameServerConfig sc;
  FrameServer server(sc);
  TcpConnection conn = TcpConnection::connect("127.0.0.1", server.port(), 5.0);
  const char garbage[] = "GET / HTTP/1.0\r\n\r\n";
  conn.write_some(reinterpret_cast<const std::uint8_t*>(garbage),
                  sizeof(garbage) - 1);
  // The server must close the connection; reads eventually return EOF.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  std::ptrdiff_t n = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    std::uint8_t buf[256];
    n = conn.read_some(buf, sizeof(buf));
    if (n == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(n, 0) << "server should close a non-LFBW1 speaker";
  const auto counters = server.counters();
  EXPECT_EQ(counters.protocol_errors, 1u);
  EXPECT_EQ(counters.subscribers, 0u);
  server.shutdown(false);
}

TEST(FrameServer, WaitForSubscriberTimesOutCleanly) {
  FrameServerConfig sc;
  FrameServer server(sc);
  EXPECT_FALSE(server.wait_for_subscriber(0.05));
  server.shutdown(false);
}

TEST(FrameClient, ConnectFailureExhaustsSupervisorStyleBackoff) {
  // Bind-then-close to get a port with nothing listening.
  std::uint16_t dead_port;
  {
    TcpListener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }
  FrameClientConfig cc;
  cc.port = dead_port;
  cc.connect_timeout = 0.5;
  FrameClient client(cc);
  FrameClient::Callbacks callbacks;
  EXPECT_THROW(client.run(callbacks), SocketError);
  EXPECT_EQ(client.counters().connects, 0u);
  // The defaults really are the Supervisor's retry policy.
  EXPECT_EQ(cc.max_connect_attempts,
            runtime::SupervisorConfig{}.max_source_retries);
  EXPECT_EQ(cc.backoff_initial,
            runtime::SupervisorConfig{}.retry_backoff_initial);
  EXPECT_EQ(cc.backoff_max, runtime::SupervisorConfig{}.retry_backoff_max);
}

// --- remote IQ ingest ----------------------------------------------------

signal::SampleBuffer make_noise_capture(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.emplace_back(rng.gaussian(), rng.gaussian());
  }
  return signal::SampleBuffer(5.0 * kMsps, std::move(samples));
}

TEST(RemoteIqSource, F64PushDeliversBitIdenticalSamples) {
  const signal::SampleBuffer capture = make_noise_capture(50000, 71);

  IqIngestConfig ic;
  RemoteIqSource source(ic);
  std::thread pusher([&] {
    runtime::MemorySource local(capture, 4096);
    const std::uint64_t pushed =
        push_iq("127.0.0.1", source.port(), local, /*f64=*/true);
    EXPECT_EQ(pushed, capture.size());
  });

  EXPECT_EQ(source.wait_for_pusher(), capture.sample_rate());
  std::vector<Complex> received;
  std::uint64_t next = 0;
  while (auto chunk = source.next_chunk()) {
    EXPECT_EQ(chunk->first_sample, next);
    next += chunk->size();
    received.insert(received.end(), chunk->samples.begin(),
                    chunk->samples.end());
  }
  pusher.join();

  ASSERT_EQ(received.size(), capture.size());
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], capture[i]) << "sample " << i;
  }
  EXPECT_FALSE(source.truncated());
  EXPECT_EQ(source.total_samples(), capture.size());
}

TEST(RemoteIqSource, RemoteDecodeMatchesLocalDecodeBitForBit) {
  // The full promise: decode a capture through a TCP hop and get exactly
  // the frames a local decode produces. Uses the same multi-tag capture
  // construction as the runtime parity tests.
  Rng rng(123);
  reader::ReceiverConfig rcv;
  rcv.sample_rate = 5.0 * kMsps;
  rcv.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < 3; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  std::vector<signal::StateTimeline> timelines;
  const Seconds duration = 5e-3;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames{
        protocol::build_frame(rng.bits(96), fc)};
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rcv, ch);
  const signal::SampleBuffer capture =
      receiver.receive_epoch(timelines, duration, rng);

  runtime::RuntimeConfig rc;
  rc.workers = 2;
  const auto local = runtime::DecodeRuntime(rc).decode(capture, 4096);

  IqIngestConfig ic;
  RemoteIqSource source(ic);
  std::thread pusher([&] {
    runtime::MemorySource mem(capture, 4096);
    push_iq("127.0.0.1", source.port(), mem, /*f64=*/true);
  });
  source.wait_for_pusher();
  const auto remote = runtime::DecodeRuntime(rc).run(source);
  pusher.join();

  ASSERT_EQ(remote.decode.streams.size(), local.decode.streams.size());
  for (std::size_t i = 0; i < local.decode.streams.size(); ++i) {
    const auto& a = local.decode.streams[i];
    const auto& b = remote.decode.streams[i];
    EXPECT_EQ(a.start_sample, b.start_sample);
    EXPECT_EQ(a.rate, b.rate);
    EXPECT_EQ(a.bits, b.bits);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
      EXPECT_EQ(a.frames[f].payload, b.frames[f].payload);
      EXPECT_EQ(a.frames[f].valid(), b.frames[f].valid());
    }
  }
}

TEST(RemoteIqSource, PusherDeathMidStreamIsNonTransient) {
  IqIngestConfig ic;
  RemoteIqSource source(ic);
  std::thread pusher([&] {
    TcpConnection conn =
        TcpConnection::connect("127.0.0.1", source.port(), 5.0);
    std::vector<std::uint8_t> bytes;
    encode_hello({PeerRole::kIqPusher, 1e6, "dying"}, bytes);
    runtime::SampleChunk chunk;
    chunk.first_sample = 0;
    chunk.samples.assign(100, Complex{0.5, -0.5});
    encode_iq_chunk(chunk, true, bytes);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const std::ptrdiff_t n =
          conn.write_some(bytes.data() + sent, bytes.size() - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    conn.close();  // no IqEnd: mid-stream death
  });

  source.wait_for_pusher();
  const auto chunk = source.next_chunk();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->samples.size(), 100u);
  try {
    while (source.next_chunk().has_value()) {
    }
    FAIL() << "mid-stream EOF must throw";
  } catch (const runtime::SourceError& e) {
    EXPECT_FALSE(e.transient());
  }
  pusher.join();
}

TEST(RemoteIqSource, WrongRolePeerIsRejected) {
  IqIngestConfig ic;
  RemoteIqSource source(ic);
  std::thread peer([&] {
    TcpConnection conn =
        TcpConnection::connect("127.0.0.1", source.port(), 5.0);
    std::vector<std::uint8_t> bytes;
    encode_hello({PeerRole::kFrameSubscriber, 0.0, "wrong"}, bytes);
    conn.write_some(bytes.data(), bytes.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  try {
    source.wait_for_pusher();
    FAIL() << "wrong role must be rejected";
  } catch (const runtime::SourceError& e) {
    EXPECT_FALSE(e.transient());
  }
  peer.join();
}

}  // namespace
}  // namespace lfbs::net

// Focused tests for decode-pipeline internals that the end-to-end suites
// exercise only indirectly: weak-anchor trimming, outlier pruning, the
// collision ladder's goodness-of-fit thresholds, and Viterbi priors.
#include <gtest/gtest.h>

#include <cmath>

#include "core/collision_detector.h"
#include "core/error_corrector.h"
#include "core/stream_detector.h"

namespace lfbs::core {
namespace {

StreamDetectorConfig paper_config() {
  StreamDetectorConfig cfg;
  cfg.lattice_period = 250.0;
  cfg.base_tolerance = 3.5;
  cfg.merge_radius = 5.0;
  cfg.valid_steps = {200, 100, 50, 20, 10, 2, 1};
  return cfg;
}

TEST(StreamDetectorDetail, PrunesOffLatticeSeed) {
  // A spurious edge 20 samples off the true phase seeds the group; once the
  // genuine edges dominate the fit, the seed's residual exposes it.
  std::vector<signal::Edge> edges;
  edges.push_back({.position = 480.0, .differential = {0.02, 0.0},
                   .strength = 0.02});
  for (int k = 0; k < 30; ++k) {
    edges.push_back({.position = 750.0 + 250.0 * k,
                     .differential = {0.1, 0.0}, .strength = 0.1});
  }
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges);
  ASSERT_EQ(groups.size(), 1u);
  // The surviving group must be re-anchored on the true stream: intercept
  // near 750, not 480, and the spurious edge pruned.
  EXPECT_NEAR(std::fmod(groups[0].intercept, 250.0), 0.0, 3.0);
  EXPECT_EQ(groups[0].edge_indices.size(), 30u);
}

TEST(StreamDetectorDetail, TrimsWeakLeadingEdges) {
  // A weak noise edge exactly on the lattice, four slots early: strength
  // trimming must drop it so the anchor is the real first edge.
  std::vector<signal::Edge> edges;
  edges.push_back({.position = 1000.0, .differential = {0.01, 0.0},
                   .strength = 0.01});
  for (int k = 4; k < 34; ++k) {
    edges.push_back({.position = 1000.0 + 250.0 * k,
                     .differential = {0.1, 0.0}, .strength = 0.1});
  }
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].edge_indices.size(), 30u);
  EXPECT_NEAR(groups[0].intercept, 2000.0, 3.0);
  EXPECT_EQ(groups[0].start_index, 0);
}

TEST(StreamDetectorDetail, KeepsStrongLeadingEdge) {
  // Same geometry but the early edge is as strong as the rest: it is a
  // legitimate (sparse) anchor and must be kept.
  std::vector<signal::Edge> edges;
  edges.push_back({.position = 1000.0, .differential = {0.1, 0.0},
                   .strength = 0.1});
  for (int k = 4; k < 34; ++k) {
    edges.push_back({.position = 1000.0 + 250.0 * k,
                     .differential = {0.1, 0.0}, .strength = 0.1});
  }
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].edge_indices.size(), 31u);
  EXPECT_NEAR(groups[0].intercept, 1000.0, 3.0);
}

TEST(CollisionLadder, ResidualFractionControlsEscalation) {
  // Two tags at similar strength: the strict default escalates to 9; an
  // absurdly lax residual_fraction accepts 3 clusters and stays "single".
  Rng rng(5);
  std::vector<Complex> points;
  const Complex e1{0.1, 0.02}, e2{-0.03, 0.09};
  int l1 = 0, l2 = 0;
  for (int k = 0; k < 300; ++k) {
    const int n1 = rng.bernoulli(0.5) ? 1 : 0;
    const int n2 = rng.bernoulli(0.5) ? 1 : 0;
    points.push_back(static_cast<double>(n1 - l1) * e1 +
                     static_cast<double>(n2 - l2) * e2 +
                     Complex{rng.gaussian(0, 0.003), rng.gaussian(0, 0.003)});
    l1 = n1;
    l2 = n2;
  }
  CollisionDetectorConfig strict;
  EXPECT_EQ(CollisionDetector(strict).assess(points, rng).colliders, 2u);
  CollisionDetectorConfig lax;
  lax.residual_fraction = 10.0;
  EXPECT_EQ(CollisionDetector(lax).assess(points, rng).colliders, 1u);
}

TEST(CollisionLadder, ThreeWayCanBeDisabled) {
  Rng rng(6);
  std::vector<Complex> points;
  const Complex e[3] = {{0.1, 0.02}, {-0.03, 0.09}, {0.06, -0.08}};
  int l[3] = {0, 0, 0};
  for (int k = 0; k < 900; ++k) {
    Complex sum{rng.gaussian(0, 0.002), rng.gaussian(0, 0.002)};
    for (int t = 0; t < 3; ++t) {
      const int nt = rng.bernoulli(0.5) ? 1 : 0;
      sum += static_cast<double>(nt - l[t]) * e[t];
      l[t] = nt;
    }
    points.push_back(sum);
  }
  CollisionDetectorConfig no3;
  no3.consider_three_way = false;
  const auto assess = CollisionDetector(no3).assess(points, rng);
  EXPECT_LE(assess.colliders, 2u);
}

TEST(ErrorCorrectorDetail, EdgeProbabilityPriorBiasesHolds) {
  // With a strong "no toggle" prior, a borderline observation resolves to
  // holding the level; with a strong "toggle" prior, to an edge.
  const Complex e{0.1, 0.0};
  // The middle observation sits exactly between the "falling" and
  // "constant" emission means, so only the transition prior can break the
  // tie.
  const std::vector<Complex> points = {e, -0.5 * e, Complex{}};
  ThreeClusterLabels labels;
  labels.rising = e;
  labels.falling = -e;
  labels.constant = {};
  labels.states = {1, 0, 0};

  ErrorCorrector::Config hold_prior;
  hold_prior.edge_probability = 0.02;
  const auto hold_bits = ErrorCorrector(hold_prior).correct(points, labels);
  ErrorCorrector::Config edge_prior;
  edge_prior.edge_probability = 0.98;
  const auto edge_bits = ErrorCorrector(edge_prior).correct(points, labels);
  // Bit 1 differs between the two priors (anchor bit 0 = 1; the middle
  // observation is exactly between "stay 1" and "fall to 0 then rise").
  EXPECT_TRUE(hold_bits[1]);
  EXPECT_FALSE(edge_bits[1]);
}

}  // namespace
}  // namespace lfbs::core

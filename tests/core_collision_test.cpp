// Tests for collision detection, parallelogram separation, bit decoding,
// and the Viterbi error corrector.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bit_decoder.h"
#include "core/collision_detector.h"
#include "core/collision_separator.h"
#include "core/error_corrector.h"
#include "dsp/kmeans.h"

namespace lfbs::core {
namespace {

/// Synthesizes boundary differentials for `colliders` tags with the given
/// edge vectors: each boundary draws independent levels per tag.
struct SyntheticCollision {
  std::vector<Complex> points;
  std::vector<std::vector<int>> states;  // per tag, per boundary
};

SyntheticCollision synthesize(const std::vector<Complex>& evecs,
                              std::size_t boundaries, double sigma,
                              Rng& rng) {
  SyntheticCollision out;
  out.states.resize(evecs.size());
  std::vector<int> level(evecs.size(), 0);
  for (std::size_t k = 0; k < boundaries; ++k) {
    Complex sum{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
    for (std::size_t t = 0; t < evecs.size(); ++t) {
      const int next = rng.bernoulli(0.5) ? 1 : 0;
      const int d = next - level[t];
      level[t] = next;
      out.states[t].push_back(d);
      sum += static_cast<double>(d) * evecs[t];
    }
    out.points.push_back(sum);
  }
  return out;
}

TEST(CollisionDetector, SingleStreamIsThreeClusters) {
  Rng rng(1);
  const auto data = synthesize({{0.1, 0.05}}, 200, 0.004, rng);
  const CollisionDetector det{CollisionDetectorConfig{}};
  const auto assess = det.assess(data.points, rng);
  EXPECT_EQ(assess.colliders, 1u);
}

TEST(CollisionDetector, TwoTagsAreNineClusters) {
  Rng rng(2);
  const auto data =
      synthesize({{0.1, 0.05}, {-0.04, 0.09}}, 300, 0.004, rng);
  const CollisionDetector det{CollisionDetectorConfig{}};
  const auto assess = det.assess(data.points, rng);
  EXPECT_EQ(assess.colliders, 2u);
  EXPECT_EQ(assess.fit.centroids.size(), 9u);
}

TEST(CollisionDetector, ThreeTagsEscalate) {
  Rng rng(3);
  const auto data = synthesize(
      {{0.1, 0.05}, {-0.04, 0.09}, {0.07, -0.08}}, 900, 0.002, rng);
  const CollisionDetector det{CollisionDetectorConfig{}};
  const auto assess = det.assess(data.points, rng);
  EXPECT_EQ(assess.colliders, 3u);
}

TEST(CollisionDetector, FewPointsStaySingle) {
  Rng rng(4);
  const auto data = synthesize({{0.1, 0.0}}, 8, 0.002, rng);
  const CollisionDetector det{CollisionDetectorConfig{}};
  EXPECT_EQ(det.assess(data.points, rng).colliders, 1u);
}

/// Parameterized sweep over collision geometries: relative phase (degrees)
/// and amplitude ratio of the second tag.
class SeparatorSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SeparatorSweep, RecoversStates) {
  const auto [phase_deg, ratio] = GetParam();
  Rng rng(42);
  const Complex e1{0.1, 0.02};
  const Complex e2 = e1 * std::polar(ratio, phase_deg * M_PI / 180.0);
  const auto data = synthesize({e1, e2}, 400, 0.05 * std::abs(e2), rng);

  const dsp::KMeansResult fit = dsp::kmeans(data.points, 9, rng);
  const CollisionSeparator sep{SeparatorConfig{}};
  const auto result = sep.separate(data.points, fit);
  ASSERT_TRUE(result.has_value())
      << "phase " << phase_deg << " ratio " << ratio;

  // Allow component order and per-component sign ambiguity.
  const auto accuracy = [&](const std::vector<EdgeState>& got,
                            const std::vector<int>& truth) {
    int flip = 0;
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (truth[k] != 0 && got[k] != 0) {
        flip = truth[k] * got[k];
        break;
      }
    }
    if (flip == 0) flip = 1;
    std::size_t ok = 0;
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (got[k] * flip == truth[k]) ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(got.size());
  };
  const double direct = accuracy(result->states1, data.states[0]) +
                        accuracy(result->states2, data.states[1]);
  const double swapped = accuracy(result->states1, data.states[1]) +
                         accuracy(result->states2, data.states[0]);
  EXPECT_GT(std::max(direct, swapped) / 2.0, 0.95)
      << "phase " << phase_deg << " ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SeparatorSweep,
    ::testing::Combine(::testing::Values(40.0, 90.0, 140.0),
                       ::testing::Values(0.5, 0.8, 1.2)));

TEST(CollisionSeparator, ThreeWayRecoversAxes) {
  Rng rng(77);
  const Complex e1{0.11, 0.01};
  const Complex e2{-0.02, 0.09};
  const Complex e3{-0.07, -0.06};
  const auto data = synthesize({e1, e2, e3}, 1200, 0.004, rng);
  const dsp::KMeansResult fit = dsp::kmeans(data.points, 27, rng);
  const CollisionSeparator sep{SeparatorConfig{}};
  const auto result = sep.separate_three(data.points, fit);
  ASSERT_TRUE(result.has_value());
  // Each recovered axis must match one true axis up to sign.
  const std::vector<Complex> truth = {e1, e2, e3};
  for (Complex got : {result->e1, result->e2, result->e3}) {
    double best = 1e9;
    for (const Complex& t : truth) {
      best = std::min({best, std::abs(got - t), std::abs(got + t)});
    }
    EXPECT_LT(best, 0.02);
  }
  EXPECT_LT(result->residual, 0.3);
}

TEST(CollisionSeparator, ThreeWayRejectsTwoTagData) {
  Rng rng(78);
  const auto data = synthesize({{0.1, 0.02}, {-0.03, 0.09}}, 1200, 0.004, rng);
  const dsp::KMeansResult fit = dsp::kmeans(data.points, 27, rng);
  const CollisionSeparator sep{SeparatorConfig{}};
  // 27 clusters force-fit to 9-cluster data: no consistent 3-axis grid.
  const auto result = sep.separate_three(data.points, fit);
  if (result.has_value()) {
    // If a degenerate "third axis" sneaks through it must be tiny relative
    // to the real ones — the pipeline's anchor checks then drop it.
    const double weakest =
        std::min({std::abs(result->e1), std::abs(result->e2),
                  std::abs(result->e3)});
    EXPECT_LT(weakest, 0.03);
  }
}

TEST(ErrorCorrector, Joint3SeparatesThreeTags) {
  Rng rng(79);
  const Complex e1{0.11, 0.01}, e2{-0.02, 0.09}, e3{-0.07, -0.06};
  const auto data = synthesize({e1, e2, e3}, 400, 0.008, rng);
  const std::vector<bool> all(400, true);
  const ErrorCorrector corrector;
  const auto joint = corrector.correct_joint3(data.points, e1, e2, e3, all,
                                              all, all, 0.008);
  int l[3] = {0, 0, 0};
  std::size_t ok[3] = {0, 0, 0};
  const std::vector<bool>* levels[3] = {&joint.levels1, &joint.levels2,
                                        &joint.levels3};
  for (std::size_t k = 0; k < 400; ++k) {
    for (int t = 0; t < 3; ++t) {
      l[t] += data.states[t][k];
      if ((*levels[t])[k] == (l[t] != 0)) ++ok[t];
    }
  }
  for (int t = 0; t < 3; ++t) EXPECT_GT(ok[t], 390u) << "tag " << t;
}

TEST(CollisionSeparator, RejectsNonGrid) {
  Rng rng(5);
  // Nine random blobs that are not a parallelogram grid.
  std::vector<Complex> points;
  std::vector<Complex> centres;
  for (int i = 0; i < 9; ++i) {
    centres.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  for (int i = 0; i < 300; ++i) {
    const Complex c = centres[rng.uniform_u64(9)];
    points.push_back(c + Complex{rng.gaussian(0, 0.01), rng.gaussian(0, 0.01)});
  }
  const dsp::KMeansResult fit = dsp::kmeans(points, 9, rng);
  const CollisionSeparator sep{SeparatorConfig{}};
  EXPECT_FALSE(sep.separate(points, fit).has_value());
}

TEST(CollisionSeparator, RejectsWrongClusterCount) {
  Rng rng(6);
  std::vector<Complex> points = {{0, 0}, {1, 1}};
  const dsp::KMeansResult fit = dsp::kmeans(points, 2, rng);
  const CollisionSeparator sep{SeparatorConfig{}};
  EXPECT_FALSE(sep.separate(points, fit).has_value());
}

TEST(BitDecoder, LabelsThreeClustersWithAnchor) {
  Rng rng(7);
  const auto data = synthesize({{0.1, -0.06}}, 200, 0.003, rng);
  // Force the first boundary to be the rising anchor.
  std::vector<Complex> points = data.points;
  points.insert(points.begin(), Complex{0.1, -0.06});
  const dsp::KMeansResult fit = dsp::kmeans(points, 3, rng);
  const ThreeClusterLabels labels = label_three_clusters(points, fit);
  EXPECT_EQ(labels.states.front(), 1);  // anchor is rising
  EXPECT_NEAR(std::abs(labels.rising - Complex{0.1, -0.06}), 0.0, 0.02);
  EXPECT_NEAR(std::abs(labels.falling + Complex{0.1, -0.06}), 0.0, 0.02);
  EXPECT_LT(std::abs(labels.constant), 0.02);
}

TEST(BitDecoder, IntegrateStatesTableOne) {
  // Table 1 of the paper: edges ↓ - - - ↑ - ↓ ↑ ↓ after an anchor 1.
  const std::vector<EdgeState> states = {1, -1, 0, 0, 0, 1, 0, -1, 1, -1};
  const std::vector<bool> expected = {true, false, false, false, false,
                                      true, true, false, true, false};
  EXPECT_EQ(integrate_states(states), expected);
}

TEST(BitDecoder, NormalizeAnchorFlipsWhenNeeded) {
  std::vector<EdgeState> flipped = {0, -1, 0, 1, -1};
  EXPECT_TRUE(normalize_anchor(flipped));
  EXPECT_EQ(flipped, (std::vector<EdgeState>{0, 1, 0, -1, 1}));
  std::vector<EdgeState> fine = {1, -1};
  EXPECT_FALSE(normalize_anchor(fine));
  std::vector<EdgeState> all_zero = {0, 0};
  EXPECT_FALSE(normalize_anchor(all_zero));
}

TEST(BitDecoder, SubsampleStates) {
  const std::vector<EdgeState> states = {1, 0, -1, 0, 1, 0};
  EXPECT_EQ(subsample_states(states, 0, 2),
            (std::vector<EdgeState>{1, -1, 1}));
  EXPECT_EQ(subsample_states(states, 1, 2),
            (std::vector<EdgeState>{0, 0, 0}));
}

TEST(BitDecoder, ClassifySimpleThresholds) {
  const std::vector<Complex> points = {{0.1, 0.0},   // anchor (rising)
                                       {0.0, 0.001}, // constant
                                       {-0.11, 0.0}, // falling
                                       {0.09, 0.01}};
  const auto states = classify_simple(points);
  EXPECT_EQ(states, (std::vector<EdgeState>{1, 0, -1, 1}));
}

TEST(ErrorCorrector, CleanSequenceRoundTrip) {
  const Complex e{0.1, -0.04};
  const std::vector<bool> truth = {true, false, false, true, true, false,
                                   true, false};
  std::vector<Complex> points;
  bool level = false;
  for (bool b : truth) {
    points.push_back((static_cast<double>(b) - static_cast<double>(level)) *
                     e);
    level = b;
  }
  ThreeClusterLabels labels;
  labels.rising = e;
  labels.falling = -e;
  labels.constant = {};
  labels.states = {1, -1, 0, 1, 0, -1, 1, -1};
  const ErrorCorrector corrector;
  EXPECT_EQ(corrector.correct(points, labels), truth);
}

TEST(ErrorCorrector, OutputAlwaysSatisfiesEdgeConstraints) {
  // Feed garbage differentials: whatever comes out must be *a* valid NRZ
  // level sequence starting from the rising anchor — by construction the
  // 4-state machine cannot emit, say, two consecutive rising edges.
  Rng rng(21);
  const Complex e{0.1, 0.0};
  std::vector<Complex> points;
  std::vector<EdgeState> states;
  for (int k = 0; k < 100; ++k) {
    points.push_back({rng.gaussian(0.0, 0.08), rng.gaussian(0.0, 0.08)});
    states.push_back(0);
  }
  points[0] = e;
  states[0] = 1;
  ThreeClusterLabels labels;
  labels.rising = e;
  labels.falling = -e;
  labels.constant = {};
  labels.states = states;
  const ErrorCorrector corrector;
  const auto bits = corrector.correct(points, labels);
  EXPECT_EQ(bits.size(), points.size());
  EXPECT_TRUE(bits.front());  // anchor forced rising
}

TEST(ErrorCorrector, BeatsHardDecisionsUnderNoise) {
  Rng rng(22);
  const Complex e{0.1, 0.02};
  std::size_t viterbi_errors = 0, hard_errors = 0, total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> truth = rng.bits(120);
    truth[0] = true;
    std::vector<Complex> points;
    bool level = false;
    for (bool b : truth) {
      const double d = static_cast<double>(b) - static_cast<double>(level);
      level = b;
      points.push_back(d * e + Complex{rng.gaussian(0.0, 0.035),
                                       rng.gaussian(0.0, 0.035)});
    }
    // Hard decisions: nearest of {+e, 0, -e}, integrated.
    std::vector<EdgeState> hard;
    for (const Complex& p : points) {
      const double dp = std::abs(p - e), dm = std::abs(p + e),
                   dz = std::abs(p);
      hard.push_back(dp < dm && dp < dz ? 1 : (dm < dz ? -1 : 0));
    }
    const auto hard_bits = integrate_states(hard);
    ThreeClusterLabels labels;
    labels.rising = e;
    labels.falling = -e;
    labels.constant = {};
    labels.states = hard;
    const ErrorCorrector corrector;
    const auto viterbi_bits = corrector.correct(points, labels);
    for (std::size_t i = 0; i < truth.size(); ++i) {
      ++total;
      if (viterbi_bits[i] != truth[i]) ++viterbi_errors;
      if (hard_bits[i] != truth[i]) ++hard_errors;
    }
  }
  // Sequence constraints must not hurt, and should help under noise.
  EXPECT_LE(viterbi_errors, hard_errors);
  EXPECT_GT(hard_errors, 0u) << "noise too low to exercise correction; "
                                "total bits " << total;
}

TEST(ErrorCorrector, JointDecodeSeparatesBothTags) {
  Rng rng(9);
  const Complex e1{0.1, 0.01}, e2{-0.03, 0.09};
  const auto data = synthesize({e1, e2}, 300, 0.01, rng);
  const std::vector<bool> toggles(300, true);
  const ErrorCorrector corrector;
  const auto joint =
      corrector.correct_joint(data.points, e1, e2, toggles, toggles, 0.01);
  // Reconstruct levels from the true states.
  std::size_t ok1 = 0, ok2 = 0;
  int l1 = 0, l2 = 0;
  for (std::size_t k = 0; k < 300; ++k) {
    l1 += data.states[0][k];
    l2 += data.states[1][k];
    if (joint.levels1[k] == (l1 != 0)) ++ok1;
    if (joint.levels2[k] == (l2 != 0)) ++ok2;
  }
  EXPECT_GT(ok1, 295u);
  EXPECT_GT(ok2, 295u);
}

TEST(ErrorCorrector, JointRespectsToggleMask) {
  const Complex e1{0.1, 0.0}, e2{0.0, 0.1};
  // Tag 2 may only toggle at even boundaries.
  std::vector<Complex> points = {e1 + e2, -e1, e2 * 0.0, -e2};
  std::vector<bool> t1 = {true, true, true, true};
  std::vector<bool> t2 = {true, false, true, false};
  const ErrorCorrector corrector;
  const auto joint = corrector.correct_joint(points, e1, e2, t1, t2, 0.01);
  // Tag 2's level can only change at boundaries 0 and 2.
  EXPECT_EQ(joint.levels2[0], joint.levels2[1]);
  EXPECT_EQ(joint.levels2[2], joint.levels2[3]);
}

}  // namespace
}  // namespace lfbs::core

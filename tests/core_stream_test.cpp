// Tests for the stream detector: lattice grouping, drift tracking, step
// estimation, and stream splitting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stream_detector.h"

namespace lfbs::core {
namespace {

StreamDetectorConfig paper_config() {
  StreamDetectorConfig cfg;
  cfg.lattice_period = 250.0;
  cfg.base_tolerance = 3.5;
  cfg.merge_radius = 5.0;
  cfg.valid_steps = {200, 100, 50, 20, 10, 2, 1};
  return cfg;
}

std::vector<signal::Edge> edges_at(const std::vector<double>& positions) {
  std::vector<signal::Edge> edges;
  for (double p : positions) {
    edges.push_back({.position = p, .differential = {0.1, 0.0},
                     .strength = 0.1});
  }
  return edges;
}

TEST(StreamDetector, GroupsSinglePeriodicStream) {
  std::vector<double> pos;
  for (int k = 0; k < 20; ++k) pos.push_back(1000.0 + 250.0 * k);
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges_at(pos));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].edge_indices.size(), 20u);
  EXPECT_EQ(groups[0].step, 1);
  EXPECT_NEAR(groups[0].intercept, 1000.0, 1.0);
  EXPECT_NEAR(groups[0].slope, 250.0, 0.01);
}

TEST(StreamDetector, SeparatesTwoOffsets) {
  std::vector<double> pos;
  for (int k = 0; k < 20; ++k) {
    pos.push_back(1000.0 + 250.0 * k);
    pos.push_back(1100.0 + 250.0 * k);
  }
  std::sort(pos.begin(), pos.end());
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges_at(pos));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].edge_indices.size(), 20u);
  EXPECT_EQ(groups[1].edge_indices.size(), 20u);
}

TEST(StreamDetector, TracksClockDrift) {
  // 200 ppm fast clock: period 250.05 samples.
  std::vector<double> pos;
  for (int k = 0; k < 100; ++k) pos.push_back(500.0 + 250.05 * k);
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges_at(pos));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].edge_indices.size(), 100u);
  EXPECT_NEAR(groups[0].slope, 250.05, 0.01);
}

TEST(StreamDetector, MergesSplinterPhases) {
  // Same tag with position noise that briefly exceeds base_tolerance: the
  // merge pass folds the splinter back.
  std::vector<double> pos;
  for (int k = 0; k < 30; ++k) {
    pos.push_back(700.0 + 250.0 * k + ((k % 7 == 3) ? 4.4 : 0.0));
  }
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges_at(pos));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].edge_indices.size(), 30u);
}

TEST(StreamDetector, DropsSparseNoise) {
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges_at({123.0, 7000.5, 15333.3}));
  // Unrelated positions cannot satisfy min_edges on a common lattice.
  for (const auto& g : groups) {
    EXPECT_GE(g.edge_indices.size(), det.config().min_edges);
  }
}

TEST(StreamDetector, SlowStreamStep) {
  // A 10 kbps stream at a 100 kbps lattice: edges every 10 slots.
  std::vector<double> pos;
  for (int k = 0; k < 12; ++k) pos.push_back(2000.0 + 2500.0 * k);
  const StreamDetector det(paper_config());
  const auto groups = det.detect(edges_at(pos));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].step, 10);
}

TEST(StreamDetector, SplitStreamsSingleFast) {
  const StreamDetector det(paper_config());
  std::vector<std::int64_t> idx;
  for (int k = 0; k < 60; ++k) {
    if (k % 2 == 0 || k % 3 == 0) idx.push_back(k);  // dense, irregular
  }
  const auto subs = det.split_streams(idx);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].step, 1);
}

TEST(StreamDetector, SplitStreamsSingleSlow) {
  const StreamDetector det(paper_config());
  std::vector<std::int64_t> idx;
  for (int k = 0; k < 20; ++k) idx.push_back(5 + 100 * k);
  const auto subs = det.split_streams(idx);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].step, 100);
  EXPECT_EQ(subs[0].start, 5);
}

TEST(StreamDetector, SplitsCoPhasedDifferentSlots) {
  // A 0.5 kbps tag (step 200, slot 0) and a 1 kbps tag (step 100, slot 2)
  // share a phase group but are separate streams, not a collision.
  const StreamDetector det(paper_config());
  std::vector<std::int64_t> idx;
  for (int k = 0; k < 57; ++k) idx.push_back(200 * k);
  for (int k = 0; k < 57; ++k) idx.push_back(2 + 100 * k);
  std::sort(idx.begin(), idx.end());
  auto subs = det.split_streams(idx);
  ASSERT_EQ(subs.size(), 2u);
  std::sort(subs.begin(), subs.end(),
            [](const auto& a, const auto& b) { return a.step > b.step; });
  EXPECT_EQ(subs[0].step, 200);
  EXPECT_EQ(subs[0].members.size(), 57u);
  EXPECT_EQ(subs[1].step, 100);
  EXPECT_EQ(subs[1].members.size(), 57u);
}

TEST(StreamDetector, CoincidentSlotsStayJoint) {
  // Same slot residues: a genuine repeated collision — one joint lattice.
  const StreamDetector det(paper_config());
  std::vector<std::int64_t> idx;
  for (int k = 0; k < 40; ++k) idx.push_back(100 * k);  // covers both tags
  const auto subs = det.split_streams(idx);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].step, 100);
}

TEST(StreamDetector, ContaminatedSlowStreamSurvives) {
  // A slow stream plus a thin uniform background (a fast tag drifting
  // through): the dominant class must still be recognized.
  const StreamDetector det(paper_config());
  std::vector<std::int64_t> idx;
  for (int k = 0; k < 30; ++k) idx.push_back(100 * k);
  // 35 background edges on unrelated slots (prime stride).
  for (int k = 0; k < 35; ++k) idx.push_back(13 + 97 * k);
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  const auto subs = det.split_streams(idx);
  bool found_slow = false;
  for (const auto& sub : subs) {
    if (sub.step == 100 && sub.members.size() >= 25) found_slow = true;
  }
  EXPECT_TRUE(found_slow);
}

TEST(StreamDetector, EstimateStepConsensus) {
  StreamDetectorConfig cfg = paper_config();
  const StreamDetector det(cfg);
  std::vector<std::int64_t> idx = {0, 10, 20, 40, 70, 90};
  const auto [step, start] = det.estimate_step(idx);
  EXPECT_EQ(step, 10);
  EXPECT_EQ(start, 0);
}

}  // namespace
}  // namespace lfbs::core

// Property-style tests of the full LfDecoder against the physical tag +
// channel + receiver simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "channel/channel_model.h"
#include "core/lf_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"

namespace lfbs::core {
namespace {

struct OneTagResult {
  bool recovered = false;
  BitRate detected_rate = 0.0;
};

OneTagResult run_one_tag(BitRate rate, SampleRate fs, double noise_power,
                         double drift_ppm, std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = fs;
  rc.noise_power = noise_power;
  channel::ChannelModel ch;
  ch.add_tag(std::polar(0.12, rng.uniform(0.0, 6.2831)));
  reader::Receiver receiver(rc, ch);

  tag::TagConfig tc;
  tc.rate = rate;
  tc.clock.drift_ppm = drift_ppm;
  tag::Tag tag(tc, rng);

  protocol::FrameConfig fc;
  const auto payload = rng.bits(fc.payload_bits);
  const Seconds duration = 113.0 / rate + 0.3e-3;
  const auto tx =
      tag.transmit_epoch({protocol::build_frame(payload, fc)}, duration, rng);
  const auto buffer = receiver.receive_epoch({{tx.timeline}}, duration, rng);

  DecoderConfig dc;
  dc.frame = fc;
  if (!dc.rate_plan.is_valid(rate)) dc.rate_plan.rates.push_back(rate);
  dc.max_rate = dc.rate_plan.max();
  const LfDecoder decoder(dc);
  const auto result = decoder.decode(buffer);

  OneTagResult out;
  for (const auto& s : result.streams) {
    for (const auto& f : s.frames) {
      if (f.valid() && f.payload == payload) {
        out.recovered = true;
        out.detected_rate = s.rate;
      }
    }
  }
  return out;
}

/// Sweep: every paper rate at two reader sample rates must decode and
/// report the right bitrate.
class RateFsSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RateFsSweep, SingleTagRoundTrip) {
  const auto [rate_kbps, fs_msps] = GetParam();
  const auto r = run_one_tag(rate_kbps * kKbps, fs_msps * kMsps, 1e-5,
                             150.0, 777);
  EXPECT_TRUE(r.recovered) << rate_kbps << " kbps @ " << fs_msps << " Msps";
  EXPECT_NEAR(r.detected_rate, rate_kbps * kKbps, rate_kbps * kKbps * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRates, RateFsSweep,
    ::testing::Combine(::testing::Values(2.0, 10.0, 50.0, 100.0),
                       ::testing::Values(5.0, 25.0)));

/// The paper claims ~200 ppm drift tolerance (§4.1).
class DriftSweep : public ::testing::TestWithParam<double> {};

TEST_P(DriftSweep, ToleratesCrystalDrift) {
  int recovered = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    if (run_one_tag(100.0 * kKbps, 25.0 * kMsps, 1e-5, GetParam(), seed)
            .recovered) {
      ++recovered;
    }
  }
  EXPECT_GE(recovered, 4) << GetParam() << " ppm";
}

INSTANTIATE_TEST_SUITE_P(Ppm, DriftSweep,
                         ::testing::Values(0.0, 50.0, 150.0, 200.0));

TEST(LfDecoder, EmptyBufferYieldsNothing) {
  const LfDecoder decoder{DecoderConfig{}};
  const auto result = decoder.decode(signal::SampleBuffer{});
  EXPECT_TRUE(result.streams.empty());
}

TEST(LfDecoder, PureNoiseYieldsNoValidFrames) {
  Rng rng(11);
  signal::SampleBuffer buf(25.0 * kMsps, 40000);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = {rng.gaussian(0.0, 0.01), rng.gaussian(0.0, 0.01)};
  }
  const LfDecoder decoder{DecoderConfig{}};
  const auto result = decoder.decode(buf);
  EXPECT_EQ(result.valid_payloads().size(), 0u);
}

TEST(LfDecoder, DecodeIsDeterministic) {
  Rng rng(12);
  reader::ReceiverConfig rc;
  channel::ChannelModel ch;
  ch.add_tag({0.1, 0.05});
  ch.add_tag({-0.06, 0.09});
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  tag::TagConfig tc;
  std::vector<signal::StateTimeline> timelines;
  for (int i = 0; i < 2; ++i) {
    tag::Tag tag(tc, rng);
    timelines.push_back(
        tag.transmit_epoch({protocol::build_frame(rng.bits(96), fc)}, 1.5e-3,
                           rng)
            .timeline);
  }
  const auto buffer = receiver.receive_epoch(timelines, 1.5e-3, rng);
  const LfDecoder decoder{DecoderConfig{}};
  const auto a = decoder.decode(buffer);
  const auto b = decoder.decode(buffer);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].bits, b.streams[i].bits);
  }
}

TEST(LfDecoder, ForcedCollisionSeparates) {
  // Two tags with identical start offsets: every edge collides; the IQ
  // stage must recover both payloads (§3.4).
  Rng rng(13);
  reader::ReceiverConfig rc;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  ch.add_tag(std::polar(0.12, 0.7));
  ch.add_tag(std::polar(0.10, 2.6));
  reader::Receiver receiver(rc, ch);

  protocol::FrameConfig fc;
  std::vector<std::vector<bool>> payloads;
  std::vector<signal::StateTimeline> timelines;
  for (int i = 0; i < 2; ++i) {
    payloads.push_back(rng.bits(fc.payload_bits));
    timelines.push_back(signal::nrz_timeline(
        protocol::build_frame(payloads[i], fc), 60e-6, 1e-5));
  }
  const auto buffer = receiver.receive_epoch(timelines, 1.4e-3, rng);
  DecoderConfig dc;
  dc.frame = fc;
  const LfDecoder decoder(dc);
  const auto result = decoder.decode(buffer);
  const auto valid = result.valid_payloads();
  for (const auto& p : payloads) {
    EXPECT_NE(std::find(valid.begin(), valid.end(), p), valid.end());
  }
  EXPECT_GE(result.diagnostics.collision_groups, 1u);
}

TEST(LfDecoder, CollisionRecoveryToggleMatters) {
  // The same forced collision with collision_recovery off must NOT recover
  // both payloads — this is the Fig 9 "Edge" vs "Edge+IQ" distinction.
  Rng rng(13);  // same seed as above
  reader::ReceiverConfig rc;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  ch.add_tag(std::polar(0.12, 0.7));
  ch.add_tag(std::polar(0.10, 2.6));
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  std::vector<std::vector<bool>> payloads;
  std::vector<signal::StateTimeline> timelines;
  for (int i = 0; i < 2; ++i) {
    payloads.push_back(rng.bits(fc.payload_bits));
    timelines.push_back(signal::nrz_timeline(
        protocol::build_frame(payloads[i], fc), 60e-6, 1e-5));
  }
  const auto buffer = receiver.receive_epoch(timelines, 1.4e-3, rng);
  DecoderConfig dc;
  dc.frame = fc;
  dc.collision_recovery = false;
  const LfDecoder decoder(dc);
  const auto valid = decoder.decode(buffer).valid_payloads();
  std::size_t recovered = 0;
  for (const auto& p : payloads) {
    if (std::find(valid.begin(), valid.end(), p) != valid.end()) ++recovered;
  }
  EXPECT_LT(recovered, 2u);
}

TEST(LfDecoder, MultipleFramesPerStream) {
  Rng rng(14);
  reader::ReceiverConfig rc;
  channel::ChannelModel ch;
  ch.add_tag({0.12, 0.04});
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  tag::TagConfig tc;
  tag::Tag tag(tc, rng);
  std::vector<std::vector<bool>> frames;
  std::vector<std::vector<bool>> payloads;
  for (int i = 0; i < 3; ++i) {
    payloads.push_back(rng.bits(fc.payload_bits));
    frames.push_back(protocol::build_frame(payloads[i], fc));
  }
  const auto tx = tag.transmit_epoch(frames, 4e-3, rng);
  const auto buffer = receiver.receive_epoch({{tx.timeline}}, 4e-3, rng);
  DecoderConfig dc;
  dc.frame = fc;
  const LfDecoder decoder(dc);
  const auto valid = decoder.decode(buffer).valid_payloads();
  EXPECT_EQ(valid.size(), 3u);
}

TEST(LfDecoder, ReportsDiagnostics) {
  const auto r = run_one_tag(100.0 * kKbps, 25.0 * kMsps, 1e-5, 150.0, 99);
  EXPECT_TRUE(r.recovered);
}

}  // namespace
}  // namespace lfbs::core

// Tests for the comparison baselines: ASK, TDMA, Buzz, cluster-only.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/ask_decoder.h"
#include "common/check.h"
#include "baseline/buzz.h"
#include "baseline/cluster_only.h"
#include "baseline/gen2.h"
#include "baseline/tdma.h"
#include "channel/channel_model.h"
#include "reader/receiver.h"
#include "tag/tag.h"

namespace lfbs::baseline {
namespace {

signal::SampleBuffer ask_buffer(const std::vector<bool>& bits, Complex h,
                                double noise, Rng& rng) {
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = noise;
  channel::ChannelModel ch;
  ch.add_tag(h);
  reader::Receiver receiver(rc, ch);
  const auto tl = signal::nrz_timeline(bits, 100e-6, 1e-5);  // 100 kbps
  const Seconds duration = 100e-6 + static_cast<double>(bits.size()) * 1e-5 +
                           100e-6;
  return receiver.receive_epoch({{tl}}, duration, rng);
}

TEST(AskDecoder, RoundTripCleanChannel) {
  Rng rng(1);
  std::vector<bool> bits = rng.bits(200);
  bits[0] = true;  // anchor-style leading one helps start detection
  const auto buf = ask_buffer(bits, {0.1, 0.05}, 1e-6, rng);
  const AskDecoder dec{AskDecoderConfig{}};
  const auto result = dec.decode(buf);
  ASSERT_GE(result.bits.size(), bits.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (result.bits[i] != bits[i]) ++errors;
  }
  EXPECT_EQ(errors, 0u);
  EXPECT_GT(result.start_sample, 0.0);
}

TEST(AskDecoder, HandlesDestructiveCombination) {
  // The tuned state can *lower* the total amplitude; the anchor resolves it.
  Rng rng(2);
  std::vector<bool> bits = rng.bits(150);
  bits[0] = true;
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-6;
  channel::ChannelModel ch;
  ch.set_environment({0.8, 0.0});
  ch.add_tag({-0.15, 0.0});  // reflection opposes the environment
  reader::Receiver receiver(rc, ch);
  const auto tl = signal::nrz_timeline(bits, 100e-6, 1e-5);
  const auto buf = receiver.receive_epoch({{tl}}, 2e-3, rng);
  const AskDecoder dec{AskDecoderConfig{}};
  const auto result = dec.decode(buf);
  ASSERT_GE(result.bits.size(), bits.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (result.bits[i] != bits[i]) ++errors;
  }
  EXPECT_EQ(errors, 0u);
}

TEST(AskDecoder, NoStreamInSilence) {
  Rng rng(3);
  signal::SampleBuffer buf(5.0 * kMsps, 10000);
  channel::add_awgn(buf, 1e-8, rng);
  const AskDecoder dec{AskDecoderConfig{}};
  const auto result = dec.decode(buf);
  EXPECT_TRUE(result.bits.empty() || result.start_sample < 0.0 ||
              result.bits.size() < 5);
}

TEST(Tdma, GoodputIsSlotEfficiencyBound) {
  const Tdma tdma{TdmaConfig{}};
  // 96 payload bits per 100-bit slot at 100 kbps = 96 kbps, regardless of n.
  EXPECT_NEAR(tdma.aggregate_goodput(1), 96.0 * kKbps, 1.0);
  EXPECT_NEAR(tdma.aggregate_goodput(16), 96.0 * kKbps, 1.0);
}

TEST(Tdma, RoundDurationLinearInTags) {
  const Tdma tdma{TdmaConfig{}};
  EXPECT_NEAR(tdma.round_duration(8) / tdma.round_duration(4), 2.0, 1e-9);
}

TEST(Tdma, IdentifyCompletesAndScales) {
  const Tdma tdma{TdmaConfig{}};
  Rng rng(4);
  const Seconds t4 = tdma.identify(4, rng);
  const Seconds t16 = tdma.identify(16, rng);
  EXPECT_GT(t4, 0.0);
  EXPECT_GT(t16, t4);
  // Inventory costs at least one ID slot per tag.
  EXPECT_GE(t16, 16.0 * (96.0 + 5.0) / (100.0 * kKbps));
}

TEST(Tdma, IdentifyIsFiniteUnderManyTags) {
  const Tdma tdma{TdmaConfig{}};
  Rng rng(5);
  std::size_t rounds = 0;
  const Seconds t = tdma.identify(200, rng, &rounds);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(rounds, 200u);
}

TEST(Buzz, RoundTripAfterEstimation) {
  Rng rng(6);
  std::vector<Complex> channels;
  for (int i = 0; i < 8; ++i) {
    channels.push_back(std::polar(rng.uniform(0.06, 0.2),
                                  rng.uniform(0.0, 6.2831)));
  }
  Buzz buzz(BuzzConfig{}, channels);
  EXPECT_GT(buzz.estimate_channels(rng), 0.0);
  std::vector<std::vector<bool>> messages;
  for (int i = 0; i < 8; ++i) messages.push_back(rng.bits(96));
  const auto result = buzz.transfer(messages, rng);
  EXPECT_TRUE(result.success);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(result.decoded[i], messages[i]);
  EXPECT_GT(buzz.goodput(result), 0.0);
}

TEST(Buzz, RequiresEstimationFirst) {
  Buzz buzz(BuzzConfig{}, {Complex{0.1, 0.0}});
  Rng rng(7);
  EXPECT_THROW(buzz.transfer({{std::vector<bool>(96, true)}}, rng),
               CheckError);
}

TEST(Buzz, RatelessAddsRoundsUnderNoise) {
  Rng rng(8);
  std::vector<Complex> channels;
  for (int i = 0; i < 12; ++i) {
    channels.push_back(std::polar(rng.uniform(0.06, 0.2),
                                  rng.uniform(0.0, 6.2831)));
  }
  BuzzConfig noisy;
  noisy.noise_power = 4e-3;  // much harsher than default
  Buzz buzz(noisy, channels);
  buzz.estimate_channels(rng);
  std::vector<std::vector<bool>> messages;
  for (int i = 0; i < 12; ++i) messages.push_back(rng.bits(96));
  const auto result = buzz.transfer(messages, rng);
  // Needs more rounds than the clean-channel starting point.
  EXPECT_GT(result.rounds_used,
            static_cast<std::size_t>(noisy.initial_round_factor * 12));
}

TEST(Buzz, StaleEstimatesBreakDecoding) {
  // The Fig 1 punchline: channel movement between estimation and transfer
  // collapses linear separation.
  Rng rng(9);
  std::vector<Complex> channels;
  for (int i = 0; i < 8; ++i) {
    channels.push_back(std::polar(rng.uniform(0.06, 0.2),
                                  rng.uniform(0.0, 6.2831)));
  }
  Buzz buzz(BuzzConfig{}, channels);
  buzz.estimate_channels(rng);
  buzz.perturb_channels(0.5, rng);
  std::vector<std::vector<bool>> messages;
  for (int i = 0; i < 8; ++i) messages.push_back(rng.bits(96));
  const auto result = buzz.transfer(messages, rng);
  bool all_correct = result.success;
  if (all_correct) {
    for (int i = 0; i < 8; ++i) {
      if (result.decoded[i] != messages[i]) all_correct = false;
    }
  }
  EXPECT_FALSE(all_correct);
}

TEST(Gen2, TimingsScaleWithTari) {
  Gen2Timings fast;
  Gen2Timings slow;
  slow.tari_s = 2.0 * fast.tari_s;
  EXPECT_NEAR(slow.query() / fast.query(), 2.0, 1e-9);
  EXPECT_GT(fast.epc_reply(), fast.rn16());
}

TEST(Gen2, InventoriesEveryTag) {
  const Gen2Inventory gen2;
  Rng rng(60);
  const auto stats = gen2.run(16, rng);
  EXPECT_EQ(stats.identified, 16u);
  EXPECT_EQ(stats.singles, 16u);
  EXPECT_GT(stats.elapsed, 0.0);
  EXPECT_EQ(stats.singles + stats.collisions + stats.empties, stats.slots);
}

TEST(Gen2, TimeGrowsWithPopulation) {
  const Gen2Inventory gen2;
  Rng rng(61);
  double prev = 0.0;
  for (std::size_t n : {4u, 16u, 64u}) {
    double sum = 0.0;
    for (int trial = 0; trial < 5; ++trial) sum += gen2.run(n, rng).elapsed;
    EXPECT_GT(sum, prev);
    prev = sum;
  }
}

TEST(Gen2, SlotEfficiencyNearAlohaBound) {
  // Framed slotted ALOHA with adaptive Q should land within a factor of
  // the 1/e optimum once the frame size matches the population.
  const Gen2Inventory gen2;
  Rng rng(62);
  double eff = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) eff += gen2.run(64, rng).slot_efficiency();
  eff /= trials;
  EXPECT_GT(eff, 0.12);
  EXPECT_LT(eff, 0.55);
}

TEST(Gen2, QAdaptationBeatsBadInitialQ) {
  // Starting with a frame far too small for the population must still
  // terminate, with Q growing out of the collision storm.
  Gen2Inventory::Config cfg;
  cfg.initial_q = 0;
  const Gen2Inventory gen2(cfg);
  Rng rng(63);
  const auto stats = gen2.run(32, rng);
  EXPECT_EQ(stats.identified, 32u);
}

TEST(ClusterOnly, CentroidCountIsTwoToTheN) {
  const auto centres =
      ClusterOnly::centroids({{0.1, 0}, {0, 0.1}, {0.05, 0.05}});
  EXPECT_EQ(centres.size(), 8u);
  EXPECT_EQ(centres[0], Complex{});  // all-off combination
  EXPECT_NEAR(std::abs(centres[7] - Complex{0.15, 0.15}), 0.0, 1e-12);
}

TEST(ClusterOnly, AccuracyDegradesWithTagCount) {
  ClusterOnlyConfig cfg;
  cfg.noise_power = 2e-4;
  cfg.bits_per_tag = 1500;
  const ClusterOnly decoder(cfg);
  double acc2 = 0.0, acc6 = 0.0;
  for (int t = 0; t < 6; ++t) {
    Rng rng(40 + t);
    std::vector<Complex> two, six;
    for (int i = 0; i < 6; ++i) {
      const Complex h = std::polar(rng.uniform(0.06, 0.2),
                                   rng.uniform(0.0, 6.2831));
      if (i < 2) two.push_back(h);
      six.push_back(h);
    }
    acc2 += decoder.run(two, rng).mean_accuracy;
    acc6 += decoder.run(six, rng).mean_accuracy;
  }
  EXPECT_GT(acc2 / 6, 0.98);      // two tags separate cleanly (Fig 2b)
  EXPECT_LT(acc6 / 6, acc2 / 6);  // six tags degrade (Fig 2c)
}

TEST(ClusterOnly, MinClusterDistanceShrinks) {
  Rng rng(50);
  ClusterOnlyConfig cfg;
  const ClusterOnly decoder(cfg);
  std::vector<Complex> channels;
  double last = 1e9;
  for (int n = 1; n <= 5; ++n) {
    channels.push_back(std::polar(0.1, 1.1 * n));
    Rng r2(7);
    const auto result = decoder.run(channels, r2);
    EXPECT_LE(result.min_cluster_distance, last + 1e-12);
    last = result.min_cluster_distance;
  }
}

}  // namespace
}  // namespace lfbs::baseline

// End-to-end tests: tags → channel → receiver → LfDecoder → frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "channel/channel_model.h"
#include "core/lf_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"

namespace lfbs {
namespace {

using core::DecodeResult;
using core::LfDecoder;

struct TestRig {
  reader::ReceiverConfig rx_config;
  channel::ChannelModel channel;
  std::vector<tag::Tag> tags;
  std::vector<std::vector<bool>> sent_payloads;  // per tag
  protocol::FrameConfig frame;

  explicit TestRig(SampleRate fs = 5.0 * kMsps) {
    rx_config.sample_rate = fs;
    rx_config.noise_power = 1e-5;
  }

  void add_tag(BitRate rate, Complex coefficient, Rng& rng) {
    tag::TagConfig tc;
    tc.rate = rate;
    tags.emplace_back(tc, rng);
    channel.add_tag(coefficient);
  }

  /// Runs one epoch where every tag sends one random-payload frame.
  DecodeResult run_epoch(Seconds duration, Rng& rng,
                         core::DecoderConfig dc = {}) {
    sent_payloads.clear();
    std::vector<signal::StateTimeline> timelines;
    for (auto& t : tags) {
      const std::vector<bool> payload = rng.bits(frame.payload_bits);
      sent_payloads.push_back(payload);
      const auto tx = t.transmit_epoch({protocol::build_frame(payload, frame)},
                                       duration, rng);
      timelines.push_back(tx.timeline);
    }
    reader::Receiver receiver(rx_config, channel);
    const auto buffer = receiver.receive_epoch(timelines, duration, rng);
    dc.frame = frame;
    const LfDecoder decoder(dc);
    return decoder.decode(buffer);
  }

  /// How many of the sent payloads were recovered CRC-clean.
  std::size_t recovered(const DecodeResult& result) const {
    const auto payloads = result.valid_payloads();
    std::size_t n = 0;
    for (const auto& sent : sent_payloads) {
      if (std::find(payloads.begin(), payloads.end(), sent) !=
          payloads.end()) {
        ++n;
      }
    }
    return n;
  }
};

TEST(Integration, SingleTagSingleFrame) {
  Rng rng(42);
  TestRig rig;
  rig.add_tag(100.0 * kKbps, Complex{0.12, 0.07}, rng);
  const auto result = rig.run_epoch(3e-3, rng);
  ASSERT_GE(result.streams.size(), 1u);
  EXPECT_EQ(rig.recovered(result), 1u);
}

TEST(Integration, TwoTagsDistinctOffsets) {
  Rng rng(7);
  TestRig rig;
  rig.add_tag(100.0 * kKbps, Complex{0.12, 0.07}, rng);
  rig.add_tag(100.0 * kKbps, Complex{-0.05, 0.11}, rng);
  const auto result = rig.run_epoch(3e-3, rng);
  EXPECT_EQ(rig.recovered(result), 2u);
}

TEST(Integration, EightTags) {
  Rng rng(19);
  TestRig rig(25.0 * kMsps);
  for (int i = 0; i < 8; ++i) {
    rig.add_tag(100.0 * kKbps,
                std::polar(0.08 + 0.01 * i, rng.uniform(0.0, 6.28)), rng);
  }
  const auto result = rig.run_epoch(1.5e-3, rng);
  // Dense deployments lose the occasional tag to an unresolved pile-up
  // (the paper defers those to the next epoch's fresh offsets).
  EXPECT_GE(rig.recovered(result), 6u);
}

TEST(Integration, MixedRates) {
  Rng rng(3);
  TestRig rig;
  rig.add_tag(100.0 * kKbps, Complex{0.12, 0.07}, rng);
  rig.add_tag(10.0 * kKbps, Complex{-0.06, 0.10}, rng);
  // Slow tag needs 113 bits at 10 kbps ≈ 11.3 ms.
  const auto result = rig.run_epoch(14e-3, rng);
  EXPECT_EQ(rig.recovered(result), 2u);
  // Rates should be identified.
  std::set<int> rates;
  for (const auto& s : result.streams) {
    rates.insert(static_cast<int>(s.rate / kKbps));
  }
  EXPECT_TRUE(rates.contains(100));
  EXPECT_TRUE(rates.contains(10));
}

}  // namespace
}  // namespace lfbs

// Tests for src/obs: histogram percentile math (the shared implementation
// RuntimeStats and the benches migrated onto), the sharded metrics
// registry under concurrent writers, the bounded tracer ring, JSONL /
// Chrome / Prometheus export round trips, and the minimal JSON reader.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::obs {
namespace {

// ---------------------------------------------------------------- percentile

TEST(HistogramPercentile, EmptySamplesIsZero) {
  EXPECT_EQ(Histogram::percentile({}, 0.5), 0.0);
  EXPECT_EQ(Histogram::percentile({}, 0.99), 0.0);
}

TEST(HistogramPercentile, SingleSampleAtEveryPercentile) {
  for (double p : {0.0, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(Histogram::percentile({7.5}, p), 7.5);
  }
}

TEST(HistogramPercentile, InterpolatesBetweenOrderStatistics) {
  // rank = p * (n - 1): for {1, 2, 3, 4} the p50 sits halfway between the
  // 2nd and 3rd order statistics.
  const std::vector<double> samples = {4.0, 1.0, 3.0, 2.0};  // unsorted
  EXPECT_DOUBLE_EQ(Histogram::percentile(samples, 0.50), 2.5);
  EXPECT_DOUBLE_EQ(Histogram::percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile(samples, 1.0), 4.0);
  // p90 of 4 samples: rank 2.7 -> 3 + 0.7 * (4 - 3).
  EXPECT_NEAR(Histogram::percentile(samples, 0.90), 3.7, 1e-12);
}

TEST(HistogramPercentile, MatchesFormerRuntimeStatsMath) {
  // The exact formula LatencyRecorder::summarize used before the
  // migration: rank = p*(n-1), linear interpolation. Spot-check a larger
  // sample set against a direct evaluation.
  std::vector<double> samples;
  for (int i = 1; i <= 101; ++i) samples.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(Histogram::percentile(samples, 0.50), 51.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile(samples, 0.99), 100.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile(samples, 0.90), 91.0);
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, RecordAndBucketPercentile) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  // p50 lands in the (1, 10] bucket; clamped to [min, max].
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 10.0);
  // Every percentile stays within the recorded range.
  EXPECT_GE(h.percentile(0.01), 0.5);
  EXPECT_LE(h.percentile(0.999), 500.0);
}

TEST(Histogram, SingleSampleClampsToThatSample) {
  Histogram h({1.0, 10.0});
  h.record(3.0);
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 3.0);
  }
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.record(0.5);
  b.record(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  EXPECT_DOUBLE_EQ(a.sum(), 20.5);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterHandleIsStableAndNamed) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.b");
  c.add(3);
  Counter& again = reg.counter("a.b");
  EXPECT_EQ(&c, &again);
  again.add(2);
  EXPECT_EQ(c.value(), 5u);
  const MetricsSnapshot snap = reg.snapshot();
  const std::uint64_t* v = snap.counter("a.b");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5u);
  EXPECT_EQ(snap.counter("missing"), nullptr);
}

TEST(MetricsRegistry, ShardMergeUnderConcurrentWriters) {
  // N threads × M increments across several counters and one histogram:
  // the merged snapshot must account for every single add, regardless of
  // which shard each thread landed on.
  MetricsRegistry reg;
  Counter& hits = reg.counter("hits");
  HistogramMetric& lat = reg.histogram("lat", {1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.add();
        lat.record(static_cast<double>(t % 3) * 10.0 + 0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram h = lat.snapshot();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 20.5);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(MetricsRegistry, SnapshotWhileWritersRun) {
  // Snapshot-on-read must never tear or crash while writers are hot; the
  // value it reports is some monotonic intermediate.
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) c.add();
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    const std::uint64_t* v = snap.counter("c");
    ASSERT_NE(v, nullptr);
    EXPECT_GE(*v, last);
    last = *v;
  }
  stop = true;
  writer.join();
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

// ------------------------------------------------------------------- tracer

TEST(Tracer, NullTracerSpanIsInert) {
  // The zero-overhead contract: a Span on a null tracer records nothing
  // and costs a branch.
  Span span(nullptr, "x", "test");
  span.attr("k", 1.0);
  EXPECT_FALSE(span.active());
}

TEST(Tracer, RecordsSpansWithDepthAndAttrs) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer", "test");
    Span inner(&tracer, "inner", "test");
    inner.attr("k", 2.5);
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  // Inner ends first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
}

TEST(Tracer, SinklessRingIsBoundedAndDropsOldest) {
  TracerConfig cfg;
  cfg.ring_capacity = 4;
  Tracer tracer(cfg);
  for (int i = 0; i < 10; ++i) {
    SpanRecord r;
    r.name = "s" + std::to_string(i);
    tracer.record(std::move(r));
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s6");  // oldest surviving
  EXPECT_EQ(spans.back().name, "s9");
}

TEST(Tracer, SinkAttachedRingAutoFlushes) {
  // With a sink the ring never drops: filling it flushes to the writer,
  // so a 10x-capacity capture stays bounded in memory and complete on
  // disk.
  std::ostringstream out;
  JsonlWriter writer(out);
  TracerConfig cfg;
  cfg.ring_capacity = 4;
  Tracer tracer(cfg);
  tracer.set_sink(&writer);
  for (int i = 0; i < 40; ++i) {
    SpanRecord r;
    r.name = "s";
    tracer.record(std::move(r));
  }
  tracer.flush();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(writer.lines(), 40u);
}

TEST(Tracer, JsonlLineParsesBack) {
  SpanRecord r;
  r.name = "window";
  r.category = "runtime";
  r.tid = 3;
  r.start_us = 100;
  r.dur_us = 250;
  r.depth = 1;
  r.attrs.emplace_back("index", 7.0);
  const std::string line = Tracer::to_jsonl(r);
  const auto parsed = parse_json(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->member_str("type", ""), "span");
  EXPECT_EQ(parsed->member_str("name", ""), "window");
  EXPECT_EQ(parsed->member_num("dur_us", -1.0), 250.0);
  const JsonValue* attrs = parsed->find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->member_num("index", -1.0), 7.0);
}

TEST(Tracer, ChromeExportIsValidJson) {
  Tracer tracer;
  {
    Span span(&tracer, "detect", "signal");
    span.attr("edges", 5.0);
  }
  std::ostringstream os;
  tracer.export_chrome(os);
  const auto parsed = parse_json(os.str());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].member_str("name", ""), "detect");
  EXPECT_EQ(events->array[0].member_str("ph", ""), "X");
}

// ----------------------------------------------------------------- eventlog

TEST(EventLog, EmitsTypedJsonlLines) {
  std::ostringstream out;
  JsonlWriter writer(out);
  EventLog log(writer);
  log.emit("frame", {Field::integer("stream_index", 2),
                     Field::num("confidence", 0.75),
                     Field::flag("crc_ok", true),
                     Field::str("note", "a \"quoted\" note")});
  const auto parsed = parse_json(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->member_str("type", ""), "frame");
  EXPECT_GE(parsed->member_num("ts_us", -1.0), 0.0);
  EXPECT_EQ(parsed->member_num("stream_index", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(parsed->member_num("confidence", -1.0), 0.75);
  EXPECT_TRUE(parsed->member_bool("crc_ok", false));
  EXPECT_EQ(parsed->member_str("note", ""), "a \"quoted\" note");
}

TEST(EventLog, SnapshotLineCarriesMetrics) {
  MetricsRegistry reg;
  reg.counter("hits").add(3);
  reg.histogram("lat", {1.0, 10.0}).record(2.0);
  std::ostringstream out;
  JsonlWriter writer(out);
  EventLog log(writer);
  log.snapshot(reg.snapshot());
  const auto parsed = parse_json(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->member_str("type", ""), "snapshot");
  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->member_num("hits", -1.0), 3.0);
  const JsonValue* hists = parsed->find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* lat = hists->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->member_num("count", -1.0), 1.0);
}

// --------------------------------------------------------------- prometheus

TEST(Prometheus, ExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("runtime.windows").add(4);
  reg.gauge("ring.depth").set(2.5);
  HistogramMetric& h = reg.histogram("lat.ms", {1.0, 10.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);
  std::ostringstream os;
  write_prometheus(reg.snapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("lfbs_runtime_windows 4"), std::string::npos);
  EXPECT_NE(text.find("lfbs_ring_depth 2.5"), std::string::npos);
  // Cumulative buckets plus +Inf, sum and count.
  EXPECT_NE(text.find("lfbs_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lfbs_lat_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lfbs_lat_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lfbs_lat_ms_count 3"), std::string::npos);
}

// --------------------------------------------------------------------- json

TEST(JsonParser, ParsesScalarsObjectsArrays) {
  const auto v = parse_json(
      R"({"a": 1.5, "b": "x\ny", "c": [1, 2, 3], "d": {"e": true}, "f": null})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->member_num("a", 0.0), 1.5);
  EXPECT_EQ(v->member_str("b", ""), "x\ny");
  const JsonValue* c = v->find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  EXPECT_EQ(c->array.size(), 3u);
  EXPECT_DOUBLE_EQ(c->array[1].num_or(0.0), 2.0);
  const JsonValue* d = v->find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->member_bool("e", false));
  const JsonValue* f = v->find("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, JsonValue::Kind::kNull);
}

TEST(JsonParser, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing", &error).has_value());
  EXPECT_FALSE(parse_json("{'a': 1}", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonParser, UnicodeEscapes) {
  // The u00e9 escape decodes to the two UTF-8 bytes of U+00E9.
  const auto v = parse_json("{\"s\": \"A\\u00e9A\"}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->member_str("s", ""), "A\xc3\xa9"
                                    "A");
}

}  // namespace
}  // namespace lfbs::obs

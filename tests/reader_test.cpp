// Tests for the reader library: carrier bookkeeping, the receive front
// end, and the high-level session loop.
#include <gtest/gtest.h>

#include "channel/channel_model.h"
#include "core/lf_decoder.h"
#include "common/check.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "reader/session.h"
#include "tag/tag.h"

namespace lfbs::reader {
namespace {

TEST(Carrier, EpochSchedule) {
  const Carrier carrier(4e-3, 0.1e-3);
  EXPECT_DOUBLE_EQ(carrier.cycle(), 4.1e-3);
  EXPECT_DOUBLE_EQ(carrier.epoch_start(0), 0.0);
  EXPECT_DOUBLE_EQ(carrier.epoch_start(3), 3 * 4.1e-3);
  EXPECT_DOUBLE_EQ(carrier.total_time(5), 5 * 4.1e-3);
}

TEST(Receiver, ComposesTagsThroughChannel) {
  Rng rng(1);
  channel::ChannelModel ch;
  ch.set_environment({0.5, 0.0});
  ch.add_tag({0.1, 0.0});
  ReceiverConfig rc;
  rc.sample_rate = 1e6;
  rc.noise_power = 0.0;
  const Receiver receiver(rc, ch);

  signal::StateTimeline tl(0.0);
  tl.add(500e-6, 1.0);
  const auto buffer = receiver.receive_epoch({{tl}}, 1e-3, rng);
  ASSERT_EQ(buffer.size(), 1000u);
  EXPECT_NEAR(buffer[100].real(), 0.5, 1e-9);  // before toggle: environment
  EXPECT_NEAR(buffer[900].real(), 0.6, 1e-9);  // after toggle: env + tag
}

TEST(Receiver, RequiresOneTimelinePerTag) {
  Rng rng(2);
  channel::ChannelModel ch;
  ch.add_tag({0.1, 0.0});
  ch.add_tag({0.2, 0.0});
  const Receiver receiver(ReceiverConfig{}, ch);
  EXPECT_THROW(receiver.receive_epoch({{signal::StateTimeline{}}}, 1e-3, rng),
               CheckError);
}

TEST(Receiver, SparseCompositionMatchesDense) {
  // The sparse (difference-array) composition must agree with the dense
  // per-tag render path, up to ramp-discretization at the handful of
  // samples inside each transition.
  Rng rng(77);
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  const std::size_t n = 6;
  for (std::size_t i = 0; i < n; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  std::vector<signal::StateTimeline> timelines;
  std::size_t transitions = 0;
  for (auto& t : tags) {
    timelines.push_back(
        t.transmit_epoch({protocol::build_frame(rng.bits(96), fc)}, 1.5e-3,
                         rng)
            .timeline);
    transitions += timelines.back().transitions().size();
  }

  ReceiverConfig dense_cfg;
  dense_cfg.noise_power = 0.0;
  ReceiverConfig sparse_cfg = dense_cfg;
  sparse_cfg.sparse_threshold = 1;  // force the sparse path
  const Receiver dense(dense_cfg, ch);
  const Receiver sparse(sparse_cfg, ch);
  Rng r1(1), r2(1);
  const auto a = dense.receive_epoch(timelines, 1.5e-3, r1);
  const auto b = sparse.receive_epoch(timelines, 1.5e-3, r2);
  ASSERT_EQ(a.size(), b.size());

  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-9) ++mismatched;
  }
  // Only ramp-interior samples may differ; each transition spans ~4.
  EXPECT_LE(mismatched, transitions * 4);
  // And the sparse capture decodes identically well.
  core::DecoderConfig dc;
  dc.frame = fc;
  EXPECT_EQ(core::LfDecoder(dc).decode(b).valid_payloads().size(),
            core::LfDecoder(dc).decode(a).valid_payloads().size());
}

/// A fake air interface: one tag per epoch sending a fresh frame, honoring
/// the commanded max rate.
class FakeAir {
 public:
  explicit FakeAir(std::uint64_t seed) : rng_(seed) {}

  signal::SampleBuffer operator()(BitRate max_rate, Seconds duration) {
    last_rate = max_rate;
    channel::ChannelModel ch;
    ch.add_tag({0.12, 0.05});
    ReceiverConfig rc;
    rc.sample_rate = 5.0 * kMsps;
    Receiver receiver(rc, ch);
    tag::TagConfig tc;
    tc.rate = max_rate;
    tag::Tag tag(tc, rng_);
    protocol::FrameConfig fc;
    const auto tx = tag.transmit_epoch(
        {protocol::build_frame(rng_.bits(fc.payload_bits), fc)}, duration,
        rng_);
    return receiver.receive_epoch({{tx.timeline}}, duration, rng_);
  }

  BitRate last_rate = 0.0;

 private:
  Rng rng_;
};

TEST(ReaderSession, RunsEpochsAndAccounts) {
  SessionConfig sc;
  sc.epoch.duration = 1.5e-3;
  FakeAir air(7);
  ReaderSession session(sc, std::ref(air));
  for (int e = 0; e < 4; ++e) {
    const auto result = session.run_epoch();
    EXPECT_GE(result.streams.size(), 1u);
  }
  EXPECT_EQ(session.stats().epochs, 4u);
  EXPECT_GE(session.stats().frames_valid, 4u);
  EXPECT_GT(session.stats().air_time, 0.0);
  EXPECT_GT(session.stats().goodput(96), 0.0);
}

TEST(ReaderSession, RateControlLowersOnLoss) {
  SessionConfig sc;
  sc.epoch.duration = 1.5e-3;
  // Air interface that returns pure noise: every epoch fails.
  auto noise_air = [rng = Rng(9)](BitRate, Seconds duration) mutable {
    signal::SampleBuffer buf(5.0 * kMsps,
                             static_cast<std::size_t>(duration * 5.0 * kMsps));
    channel::add_awgn(buf, 0.05, rng);
    return buf;
  };
  ReaderSession session(sc, noise_air);
  for (int e = 0; e < 6; ++e) session.run_epoch();
  // Junk decodes produce failed frames; the controller must have stepped
  // the max rate down (or decoded nothing at all and held steady).
  EXPECT_LE(session.current_max_rate(), 100.0 * kKbps);
}

TEST(ReaderSession, RejectsInvalidMaxRate) {
  SessionConfig sc;
  sc.epoch.max_rate = 37.0 * kKbps;  // not in the paper rate plan
  FakeAir air(1);
  EXPECT_THROW(ReaderSession(sc, std::ref(air)), CheckError);
}

TEST(ReaderSession, RateControlCanBeDisabled) {
  SessionConfig sc;
  sc.rate_control = false;
  FakeAir air(11);
  ReaderSession session(sc, std::ref(air));
  session.run_epoch();
  EXPECT_EQ(session.stats().rate_commands, 0u);
  EXPECT_DOUBLE_EQ(session.current_max_rate(), 100.0 * kKbps);
}

/// Synthetic decode results for driving the health ledger directly: a
/// stream identified by its edge vector whose frames either all fail CRC
/// or contain one valid frame.
core::DecodeResult ledger_epoch(Complex edge_vector, bool valid) {
  core::DecodeResult result;
  core::DecodedStream s;
  s.edge_vector = edge_vector;
  s.rate = 100.0 * kKbps;
  s.bits = std::vector<bool>(113, true);
  protocol::ParsedFrame frame;
  frame.anchor_ok = valid;
  frame.crc_ok = valid;
  s.frames.push_back(frame);
  result.streams.push_back(std::move(s));
  return result;
}

TEST(HealthLedger, QuarantinesAfterConsecutiveFailures) {
  HealthLedger ledger;
  const Complex v{0.1, 0.05};
  for (int e = 0; e < 2; ++e) {
    const auto h = ledger.observe(ledger_epoch(v, false));
    EXPECT_EQ(h.newly_quarantined, 0u);
    EXPECT_EQ(h.quarantined, 0u);
  }
  const auto h = ledger.observe(ledger_epoch(v, false));
  EXPECT_EQ(h.newly_quarantined, 1u);
  EXPECT_EQ(h.quarantined, 1u);
  EXPECT_EQ(h.tracked, 1u);
  EXPECT_EQ(ledger.total_quarantines(), 1u);
  // The polarity-flipped vector is the same tag, not a second entry.
  const auto h2 = ledger.observe(ledger_epoch(-v, false));
  EXPECT_EQ(h2.tracked, 1u);
}

TEST(HealthLedger, OneCleanEpochBreaksTheStreak) {
  HealthLedger ledger;
  const Complex v{0.1, 0.05};
  ledger.observe(ledger_epoch(v, false));
  ledger.observe(ledger_epoch(v, false));
  ledger.observe(ledger_epoch(v, true));  // streak broken
  ledger.observe(ledger_epoch(v, false));
  ledger.observe(ledger_epoch(v, false));
  const auto h = ledger.observe(ledger_epoch(v, false));
  // Three consecutive failures only after the clean epoch.
  EXPECT_EQ(h.newly_quarantined, 1u);
}

TEST(HealthLedger, ProbationThenRecovery) {
  HealthLedgerConfig cfg;
  cfg.quarantine_after = 2;
  cfg.probation_epochs = 2;
  HealthLedger ledger(cfg);
  const Complex v{0.08, -0.03};
  ledger.observe(ledger_epoch(v, false));
  EXPECT_EQ(ledger.observe(ledger_epoch(v, false)).quarantined, 1u);
  // First clean epoch: quarantine -> probation, not yet healthy.
  auto h = ledger.observe(ledger_epoch(v, true));
  EXPECT_EQ(h.quarantined, 0u);
  EXPECT_EQ(h.probation, 1u);
  EXPECT_EQ(h.recovered, 0u);
  // A failure on probation goes straight back to quarantine.
  h = ledger.observe(ledger_epoch(v, false));
  EXPECT_EQ(h.quarantined, 1u);
  EXPECT_EQ(h.newly_quarantined, 1u);
  // Clean run: probation for probation_epochs, then healthy.
  ledger.observe(ledger_epoch(v, true));
  ledger.observe(ledger_epoch(v, true));
  h = ledger.observe(ledger_epoch(v, true));
  EXPECT_EQ(h.recovered, 1u);
  EXPECT_EQ(h.probation, 0u);
  EXPECT_EQ(h.quarantined, 0u);
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].state, HealthState::kHealthy);
}

TEST(HealthLedger, ForgetsDepartedTags) {
  HealthLedgerConfig cfg;
  cfg.forget_after = 2;
  HealthLedger ledger(cfg);
  ledger.observe(ledger_epoch({0.1, 0.0}, true));
  EXPECT_EQ(ledger.entries().size(), 1u);
  // A different tag appears; the first goes silent.
  const Complex other{-0.02, 0.12};
  ledger.observe(ledger_epoch(other, true));
  ledger.observe(ledger_epoch(other, true));
  const auto h = ledger.observe(ledger_epoch(other, true));
  EXPECT_EQ(h.tracked, 1u);  // departed tag forgotten
}

TEST(HealthLedger, LowConfidenceCountsAsFailure) {
  HealthLedgerConfig cfg;
  cfg.quarantine_after = 2;
  cfg.min_confidence = 0.5;
  HealthLedger ledger(cfg);
  const Complex v{0.1, 0.05};
  // CRC-clean but decoded with a rock-bottom confidence score.
  auto low = ledger_epoch(v, true);
  low.streams[0].confidence.edge_confidence = 0.1;
  low.streams[0].confidence.stage = core::FallbackStage::kRelaxedDetection;
  ledger.observe(low);
  const auto h = ledger.observe(low);
  EXPECT_EQ(h.newly_quarantined, 1u);
}

TEST(ReaderSession, QuarantineForcesRateStepDown) {
  SessionConfig sc;
  sc.epoch.duration = 1.5e-3;
  sc.health.quarantine_after = 3;
  FakeAir air(21);
  // Injected decode hook: the same stream fails CRC every epoch — invisible
  // to the loss-ratio controller (too few frames to trip it) but exactly
  // what the ledger exists to catch.
  auto failing_decode = [](const signal::SampleBuffer&) {
    return ledger_epoch({0.1, 0.05}, false);
  };
  ReaderSession session(sc, std::ref(air), failing_decode);
  for (int e = 0; e < 3; ++e) session.run_epoch();
  EXPECT_EQ(session.stats().quarantines, 1u);
  EXPECT_EQ(session.stats().health_step_downs, 1u);
  EXPECT_LT(session.current_max_rate(), 100.0 * kKbps);
  EXPECT_EQ(session.health().entries().size(), 1u);
  EXPECT_EQ(session.health().entries()[0].state, HealthState::kQuarantined);
}

TEST(ReaderSession, HealthyEpochsReportConfidence) {
  SessionConfig sc;
  sc.epoch.duration = 1.5e-3;
  FakeAir air(31);
  ReaderSession session(sc, std::ref(air));
  for (int e = 0; e < 3; ++e) session.run_epoch();
  EXPECT_EQ(session.stats().quarantines, 0u);
  EXPECT_EQ(session.stats().health_step_downs, 0u);
  EXPECT_GT(session.stats().mean_confidence(), 0.5);
}

}  // namespace
}  // namespace lfbs::reader

// Tests for the gateway's overload protection (src/net/admission.* plus
// the FrameServer/FrameClient/DecodeRuntime integration): the --quota
// grammar and its typed errors, the admission primitives (token bucket,
// resource budget, controller), typed Bye(kAdmissionDenied) with a
// retry-after hint the client honors, tiered budget shedding that never
// touches a priority subscriber, bounded (never deadlocking)
// backpressure into the decode pipeline, typed replay-ring truncation,
// and — the load-bearing invariant — a frame ledger that closes exactly:
//   frames_enqueued == frames_sent + queue_drops + budget_sheds
//                      + frames_discarded
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "channel/channel_model.h"
#include "common/rng.h"
#include "net/admission.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/ring_buffer.h"
#include "runtime/runtime.h"
#include "runtime/sample_source.h"
#include "tag/tag.h"

namespace lfbs::net {
namespace {

using Clock = std::chrono::steady_clock;

runtime::FrameEvent make_event(std::uint64_t seed) {
  Rng rng(seed + 1);
  runtime::FrameEvent event;
  event.stream_index = static_cast<std::size_t>(seed % 7);
  event.stream_start = rng.uniform(0.0, 1e6);
  event.rate = rng.uniform(1e3, 250e3);
  event.confidence = rng.uniform(0.0, 1.0);
  event.frame.payload = rng.bits(96);
  event.frame.anchor_ok = true;
  event.frame.crc_ok = true;
  event.epoch_index = 1;
  event.window_index = seed;
  event.frame_index = 0;
  return event;
}

std::size_t encoded_frame_bytes(const runtime::FrameEvent& event) {
  std::vector<std::uint8_t> bytes;
  encode_frame(event, bytes);
  return bytes.size();
}

/// Raw subscriber with an explicit class that completes the handshake and
/// then never reads — the shed target of the budget tests.
struct StalledSubscriber {
  TcpConnection conn;

  StalledSubscriber(std::uint16_t port, ClientClass cls)
      : conn(TcpConnection::connect("127.0.0.1", port, 5.0)) {
    std::vector<std::uint8_t> bytes;
    Hello hello;
    hello.role = PeerRole::kFrameSubscriber;
    hello.name = "stalled";
    hello.client_class = cls;
    encode_hello(hello, bytes);
    encode_subscribe({}, bytes);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const std::ptrdiff_t n =
          conn.write_some(bytes.data() + sent, bytes.size() - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
  }
};

void wait_for_subscribers(const FrameServer& server, std::size_t want) {
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (server.counters().subscribers < want && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.counters().subscribers, want);
}

void expect_ledger_closes(const FrameServer::Counters& c) {
  EXPECT_EQ(c.frames_enqueued, c.frames_sent + c.queue_drops +
                                   c.budget_sheds + c.frames_discarded)
      << "enqueued " << c.frames_enqueued << " sent " << c.frames_sent
      << " drops " << c.queue_drops << " sheds " << c.budget_sheds
      << " discarded " << c.frames_discarded;
}

// --- quota grammar -------------------------------------------------------

TEST(QuotaSpec, ParsesFullGrammar) {
  const AdmissionConfig config = parse_quota_spec(
      "conns=12,retry-after=0.25,be-clients=8,be-fps=100,be-queue-kb=64,"
      "prio-clients=2,prio-fps=500,prio-queue-kb=256");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.max_connections, 12u);
  EXPECT_EQ(config.retry_after, 0.25);
  EXPECT_EQ(config.best_effort.max_clients, 8u);
  EXPECT_EQ(config.best_effort.max_frames_per_sec, 100.0);
  EXPECT_EQ(config.best_effort.max_queue_bytes, 64u * 1024);
  EXPECT_EQ(config.priority.max_clients, 2u);
  EXPECT_EQ(config.priority.max_frames_per_sec, 500.0);
  EXPECT_EQ(config.priority.max_queue_bytes, 256u * 1024);
}

TEST(QuotaSpec, PartialSpecLeavesOtherKnobsUnlimited) {
  const AdmissionConfig config = parse_quota_spec("conns=4");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.max_connections, 4u);
  EXPECT_EQ(config.best_effort.max_clients, 0u);       // unlimited
  EXPECT_EQ(config.best_effort.max_queue_bytes, 0u);   // unlimited
  EXPECT_EQ(config.priority.max_frames_per_sec, 0.0);  // unlimited
}

TEST(QuotaSpec, ErrorsAreTyped) {
  const auto code_of = [](const std::string& spec) {
    try {
      parse_quota_spec(spec);
    } catch (const QuotaParseError& e) {
      return e.code();
    }
    ADD_FAILURE() << "spec '" << spec << "' did not throw";
    return QuotaError::kEmpty;
  };
  EXPECT_EQ(code_of(""), QuotaError::kEmpty);
  EXPECT_EQ(code_of("conns=4,,be-fps=1"), QuotaError::kEmpty);
  EXPECT_EQ(code_of("bogus=4"), QuotaError::kBadKey);
  EXPECT_EQ(code_of("conns"), QuotaError::kBadValue);  // key with no '='
  EXPECT_EQ(code_of("conns=abc"), QuotaError::kBadValue);
  EXPECT_EQ(code_of("retry-after=-1"), QuotaError::kBadValue);
  // QuotaParseError stays catchable as the generic CheckError.
  EXPECT_THROW(parse_quota_spec("nope=1"), CheckError);
}

// --- admission primitives ------------------------------------------------

TEST(TokenBucketTest, RefillsAtRateAndCapsBurst) {
  TokenBucket bucket(4.0, /*now=*/0.0);  // 4 frames/sec, burst 4
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));  // burst spent
  EXPECT_FALSE(bucket.try_take(0.1));  // 0.4 tokens accrued: still short
  EXPECT_TRUE(bucket.try_take(0.25));  // a full token by now
  // A long idle stretch refills to the burst cap, not beyond.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_FALSE(bucket.try_take(100.0));
}

TEST(TokenBucketTest, ZeroRateAlwaysAdmits) {
  TokenBucket bucket;
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(bucket.try_take(0.0));
}

TEST(ResourceBudgetTest, ChargesReleasesAndTracksPeak) {
  ResourceBudget budget(1000);
  EXPECT_TRUE(budget.try_charge(600));
  EXPECT_TRUE(budget.try_charge(400));
  EXPECT_FALSE(budget.try_charge(1));  // full
  EXPECT_TRUE(budget.saturated());
  EXPECT_FALSE(budget.below_low_water());
  budget.release(400);
  EXPECT_FALSE(budget.saturated());
  EXPECT_TRUE(budget.below_low_water());  // 600 < 750
  // charge() is the priority path: it may overshoot the limit.
  budget.charge(900);
  EXPECT_EQ(budget.used(), 1500u);
  EXPECT_EQ(budget.peak(), 1500u);
  budget.release(1500);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1500u);  // peak is sticky
}

TEST(AdmissionControllerTest, ConnectionBudgetAndClassCounts) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_connections = 2;
  config.retry_after = 0.75;
  config.best_effort.max_clients = 1;
  config.priority.max_clients = 1;
  AdmissionController controller(config);

  EXPECT_TRUE(controller.admit_connection(1).admitted);
  const AdmissionDecision deny = controller.admit_connection(2);
  EXPECT_FALSE(deny.admitted);
  EXPECT_EQ(deny.retry_after, 0.75);

  EXPECT_TRUE(controller.admit_class(ClientClass::kBestEffort).admitted);
  EXPECT_FALSE(controller.admit_class(ClientClass::kBestEffort).admitted);
  EXPECT_TRUE(controller.admit_class(ClientClass::kPriority).admitted);
  controller.release_class(ClientClass::kBestEffort);
  EXPECT_TRUE(controller.admit_class(ClientClass::kBestEffort).admitted);
}

TEST(BackpressureGateTest, WaitIsBoundedAndReleaseWakes) {
  runtime::BackpressureGate gate;
  // Disengaged: wait returns immediately, reporting no throttle.
  EXPECT_FALSE(gate.wait(std::chrono::milliseconds(250)));

  // Engaged with no one releasing: the wait is bounded by max_wait — this
  // is the "never deadlocks" contract.
  gate.engage();
  const auto t0 = Clock::now();
  EXPECT_TRUE(gate.wait(std::chrono::milliseconds(50)));
  const auto bounded = Clock::now() - t0;
  EXPECT_GE(bounded, std::chrono::milliseconds(45));
  EXPECT_LT(bounded, std::chrono::seconds(5));

  // A release wakes a waiter well before its bound.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.release();
  });
  const auto t1 = Clock::now();
  EXPECT_TRUE(gate.wait(std::chrono::seconds(10)));
  EXPECT_LT(Clock::now() - t1, std::chrono::seconds(5));
  releaser.join();
  EXPECT_FALSE(gate.engaged());
}

// --- wire v4 -------------------------------------------------------------

TEST(WireV4, ClassRetryAfterAndShortfallRoundTrip) {
  std::vector<std::uint8_t> bytes;
  Hello hello;
  hello.role = PeerRole::kFrameSubscriber;
  hello.name = "prio";
  hello.client_class = ClientClass::kPriority;
  encode_hello(hello, bytes);
  encode_ack({0, "replay", /*replay_shortfall=*/17}, bytes);
  encode_bye({ByeReason::kAdmissionDenied, "full", /*retry_after=*/0.5},
             bytes);

  MessageReader reader;
  reader.feed(bytes.data(), bytes.size());
  std::vector<Message> messages;
  while (auto message = reader.next()) messages.push_back(std::move(*message));
  ASSERT_EQ(messages.size(), 3u);
  const Hello h = decode_hello(messages[0].body);
  EXPECT_EQ(h.client_class, ClientClass::kPriority);
  const Ack ack = decode_ack(messages[1].body);
  EXPECT_EQ(ack.replay_shortfall, 17u);
  const Bye bye = decode_bye(messages[2].body);
  EXPECT_EQ(bye.reason, ByeReason::kAdmissionDenied);
  EXPECT_EQ(bye.retry_after, 0.5);
  EXPECT_STREQ(to_string(ByeReason::kAdmissionDenied), "admission-denied");
}

// --- server integration --------------------------------------------------

TEST(Admission, OverBudgetDialGetsTypedDenyWithRetryHint) {
  FrameServerConfig sc;
  sc.admission.enabled = true;
  sc.admission.max_connections = 1;
  sc.admission.retry_after = 0.3;
  FrameServer server(sc);

  // First client holds the only slot.
  FrameClientConfig cc;
  cc.port = server.port();
  cc.name = "holder";
  FrameClient holder(cc);
  std::thread holder_thread([&] { holder.run({}); });
  wait_for_subscribers(server, 1);

  // Second dial completes at TCP but is refused with the typed Bye.
  FrameClientConfig dc;
  dc.port = server.port();
  dc.name = "denied";
  dc.max_admission_retries = 0;
  FrameClient denied(dc);
  const Bye bye = denied.run({});
  EXPECT_EQ(bye.reason, ByeReason::kAdmissionDenied);
  EXPECT_EQ(bye.retry_after, 0.3);
  EXPECT_EQ(denied.counters().admission_denies, 1u);
  EXPECT_EQ(server.counters().admission_denies, 1u);

  server.shutdown(/*drain=*/true);
  holder_thread.join();
}

TEST(Admission, DeniedClientHonorsRetryAfterAndGetsInWhenSlotFrees) {
  FrameServerConfig sc;
  sc.admission.enabled = true;
  sc.admission.max_connections = 1;
  sc.admission.retry_after = 0.05;
  FrameServer server(sc);

  FrameClientConfig hc;
  hc.port = server.port();
  hc.name = "holder";
  FrameClient holder(hc);
  std::thread holder_thread([&] { holder.run({}); });
  wait_for_subscribers(server, 1);

  FrameClientConfig rc;
  rc.port = server.port();
  rc.name = "patient";
  rc.max_admission_retries = 50;  // plenty; one freed slot ends the loop
  FrameClient patient(rc);
  std::thread patient_thread([&] {
    const Bye bye = patient.run({});
    EXPECT_EQ(bye.reason, ByeReason::kEndOfStream);
  });

  // Let the patient client absorb at least one typed deny, then free the
  // slot: its next retry-after redial must be admitted.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (server.counters().admission_denies == 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(server.counters().admission_denies, 0u);
  holder.stop();
  holder_thread.join();

  const auto sub_deadline = Clock::now() + std::chrono::seconds(5);
  while (server.counters().subscribers < 1 && Clock::now() < sub_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.counters().subscribers, 1u);
  server.shutdown(/*drain=*/true);
  patient_thread.join();

  EXPECT_GT(patient.counters().admission_denies, 0u);
  EXPECT_GT(patient.counters().retry_after_waits, 0u);
  EXPECT_EQ(patient.counters().connects, 1u);
}

TEST(Admission, ClassQuotaDeniesAtHelloTime) {
  FrameServerConfig sc;
  sc.admission.enabled = true;  // connections unlimited; class quota binds
  sc.admission.best_effort.max_clients = 1;
  FrameServer server(sc);

  FrameClientConfig bc;
  bc.port = server.port();
  bc.name = "be-1";
  FrameClient first(bc);
  std::thread first_thread([&] { first.run({}); });
  wait_for_subscribers(server, 1);

  FrameClientConfig bc2 = bc;
  bc2.name = "be-2";
  bc2.max_admission_retries = 0;
  FrameClient second(bc2);
  EXPECT_EQ(second.run({}).reason, ByeReason::kAdmissionDenied);

  // A priority subscriber is a different class: still admitted.
  FrameClientConfig pc;
  pc.port = server.port();
  pc.name = "prio";
  pc.client_class = ClientClass::kPriority;
  FrameClient prio(pc);
  std::thread prio_thread([&] {
    EXPECT_EQ(prio.run({}).reason, ByeReason::kEndOfStream);
  });
  wait_for_subscribers(server, 2);
  EXPECT_EQ(server.counters().priority_clients, 1u);

  server.shutdown(/*drain=*/true);
  first_thread.join();
  prio_thread.join();
}

TEST(Admission, QuotaShedsExcessFramesPerSecond) {
  FrameServerConfig sc;
  sc.admission.enabled = true;
  sc.admission.best_effort.max_frames_per_sec = 8.0;  // burst of 8
  sc.drain_timeout = 2.0;
  FrameServer server(sc);

  std::atomic<std::size_t> received{0};
  FrameClientConfig cc;
  cc.port = server.port();
  FrameClient client(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent&) { ++received; };
    client.run(callbacks);
  });
  wait_for_subscribers(server, 1);

  // 64 frames in one burst against a bucket holding 8: the overflow is
  // shed at enqueue (typed), not queued.
  for (std::uint64_t i = 0; i < 64; ++i) server.publish(make_event(i));
  server.shutdown(/*drain=*/true);
  tail.join();

  const auto c = server.counters();
  EXPECT_GT(c.quota_sheds, 0u);
  EXPECT_EQ(c.quota_sheds + c.frames_enqueued, 64u);
  EXPECT_EQ(received.load(), c.frames_sent);
  expect_ledger_closes(c);
}

TEST(Overload, TieredSheddingNeverTouchesThePrioritySubscriber) {
  const std::size_t frame_bytes = encoded_frame_bytes(make_event(1));
  ResourceBudget budget(24 * frame_bytes);

  FrameServerConfig sc;
  sc.replay_frames = 64;  // ring history is the first shed tier
  sc.budget = &budget;
  sc.drain_timeout = 5.0;
  // Tiny kernel send buffer: without it the stalled client's frames drain
  // into the OS and its server-side queue (the tier-2 shed target) stays
  // empty.
  sc.send_buffer_bytes = 2048;
  FrameServer server(sc);

  // The shed target: a best-effort subscriber that never reads.
  StalledSubscriber stalled(server.port(), ClientClass::kBestEffort);

  // The protected party: a priority tail that reads everything.
  std::vector<runtime::FrameEvent> priority_got;
  FrameClientConfig pc;
  pc.port = server.port();
  pc.name = "priority";
  pc.client_class = ClientClass::kPriority;
  FrameClient priority_tail(pc);
  std::thread priority_thread([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent& event) {
      priority_got.push_back(event);
    };
    EXPECT_EQ(priority_tail.run(callbacks).reason, ByeReason::kEndOfStream);
  });
  wait_for_subscribers(server, 2);

  std::vector<runtime::FrameEvent> sent;
  for (std::uint64_t i = 0; i < 256; ++i) {
    sent.push_back(make_event(i));
    server.publish(sent.back());
    if (i % 4 == 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown(/*drain=*/true);
  stalled.conn.close();
  priority_thread.join();

  // Priority delivery is complete and bit-identical, in order.
  ASSERT_EQ(priority_got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(priority_got[i].window_index, sent[i].window_index);
    EXPECT_EQ(priority_got[i].frame.payload, sent[i].frame.payload);
    EXPECT_EQ(priority_got[i].stream_start, sent[i].stream_start);
  }

  // The budget bit: history and best-effort queues were shed, typed.
  const auto c = server.counters();
  EXPECT_GT(c.ring_sheds, 0u);
  EXPECT_GT(c.budget_sheds + c.budget_refusals, 0u);
  EXPECT_GT(c.queue_bytes_peak, 0u);
  expect_ledger_closes(c);
}

TEST(Overload, BudgetDrainsToZeroAfterTeardown) {
  const std::size_t frame_bytes = encoded_frame_bytes(make_event(1));
  ResourceBudget budget(16 * frame_bytes);
  {
    FrameServerConfig sc;
    sc.replay_frames = 32;
    sc.budget = &budget;
    sc.drain_timeout = 1.0;
    FrameServer server(sc);
    StalledSubscriber stalled(server.port(), ClientClass::kBestEffort);
    wait_for_subscribers(server, 1);
    for (std::uint64_t i = 0; i < 128; ++i) server.publish(make_event(i));
    // No drained shutdown: the destructor path must still square the
    // books — queued bytes on close, ring bytes on destruction.
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_GT(budget.peak(), 0u);
}

TEST(Overload, BackpressureBoundsIngestWithoutDeadlock) {
  // A permanently engaged gate (its releasing server has died, say) must
  // throttle ingest by at most max_wait per chunk — the decode still
  // completes, and the throttles are counted.
  Rng rng(7);
  reader::ReceiverConfig rcfg;
  rcfg.sample_rate = 5.0 * kMsps;
  rcfg.noise_power = 1e-5;
  channel::ChannelModel ch;
  ch.add_tag(std::polar(0.15, 1.0));
  tag::TagConfig tc;
  tc.incoming_energy = 1.0;
  tag::Tag tag(tc, rng);
  protocol::FrameConfig fc;
  std::vector<std::vector<bool>> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(
      protocol::build_frame(rng.bits(96), fc));
  const Seconds duration = 0.02;
  std::vector<signal::StateTimeline> timelines{
      tag.transmit_epoch(frames, duration, rng).timeline};
  reader::Receiver receiver(rcfg, ch);
  const signal::SampleBuffer capture =
      receiver.receive_epoch(timelines, duration, rng);

  runtime::BackpressureGate gate;
  gate.engage();

  runtime::RuntimeConfig rc;
  rc.workers = 2;
  rc.backpressure = &gate;
  rc.backpressure_max_wait = 0.02;
  runtime::DecodeRuntime rt(rc);
  runtime::MemorySource source(capture, 1 << 14);
  const auto t0 = Clock::now();
  const runtime::RuntimeResult result = rt.run(source);
  const Seconds wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  EXPECT_GT(result.stats.backpressure_waits, 0u);
  EXPECT_GT(result.stats.backpressure_seconds, 0.0);
  // ~7 chunks * 20 ms bound each: far under this ceiling unless the gate
  // deadlocked the ingest loop.
  EXPECT_LT(wall, 10.0);
  EXPECT_GT(result.stats.frames_published, 0u);
  gate.release();
}

TEST(Overload, ReplayTruncationIsTypedAndAcked) {
  const std::size_t frame_bytes = encoded_frame_bytes(make_event(1));
  // Budget holds ~8 frames of ring history; the configured ring wants 32.
  ResourceBudget budget(8 * frame_bytes);
  FrameServerConfig sc;
  sc.replay_frames = 32;
  sc.budget = &budget;
  FrameServer server(sc);

  // Fill the ring with no subscribers attached: the budget trims history
  // as it rotates in.
  for (std::uint64_t i = 0; i < 64; ++i) server.publish(make_event(i));
  ASSERT_GT(server.counters().ring_sheds, 0u);

  // A healing resubscriber asks for replay and is told, in the ack, how
  // many frames of the configured window the budget already shed.
  std::atomic<std::size_t> replayed{0};
  FrameClientConfig cc;
  cc.port = server.port();
  cc.name = "healer";
  cc.filter.replay_recent = true;
  FrameClient healer(cc);
  std::thread tail([&] {
    FrameClient::Callbacks callbacks;
    callbacks.on_frame = [&](const runtime::FrameEvent&) { ++replayed; };
    EXPECT_EQ(healer.run(callbacks).reason, ByeReason::kEndOfStream);
  });
  wait_for_subscribers(server, 1);
  server.shutdown(/*drain=*/true);
  tail.join();

  EXPECT_GT(healer.counters().replay_shortfall, 0u);
  EXPECT_GT(server.counters().replay_truncated, 0u);
  EXPECT_GT(replayed.load(), 0u);  // what history survived still replays
  EXPECT_EQ(replayed.load() + healer.counters().replay_shortfall, 32u);
}

TEST(Overload, ThirtyTwoClientStormAccountingClosesExactly) {
  FrameServerConfig sc;
  sc.admission.enabled = true;
  sc.admission.max_connections = 4;
  sc.admission.retry_after = 0.1;
  FrameServer server(sc);

  constexpr std::size_t kStorm = 32;
  std::atomic<std::size_t> denied{0}, admitted{0}, no_hint{0};
  std::vector<std::unique_ptr<FrameClient>> clients;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kStorm; ++i) {
    FrameClientConfig cc;
    cc.port = server.port();
    cc.name = "storm-" + std::to_string(i);
    cc.max_admission_retries = 0;
    clients.push_back(std::make_unique<FrameClient>(cc));
    FrameClient* client = clients.back().get();
    threads.emplace_back([client, &denied, &admitted, &no_hint] {
      const Bye bye = client->run({});
      if (bye.reason == ByeReason::kAdmissionDenied) {
        ++denied;
        if (!(bye.retry_after > 0.0)) ++no_hint;
      } else {
        ++admitted;
      }
    });
  }

  // Every dial resolves: denied clients return, admitted ones subscribe.
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (denied.load() + server.counters().subscribers < kStorm &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(denied.load() + server.counters().subscribers, kStorm);

  for (std::uint64_t i = 0; i < 16; ++i) server.publish(make_event(i));
  server.shutdown(/*drain=*/true);
  for (auto& thread : threads) thread.join();

  const auto c = server.counters();
  EXPECT_GT(denied.load(), 0u);
  EXPECT_GE(admitted.load(), 1u);
  EXPECT_EQ(denied.load() + admitted.load(), kStorm);
  EXPECT_EQ(no_hint.load(), 0u);
  EXPECT_EQ(c.admission_denies, denied.load());
  expect_ledger_closes(c);
}

}  // namespace
}  // namespace lfbs::net

// System-level property sweeps: invariants that must hold across seeds,
// node counts, and configurations (parameterized gtest).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "channel/channel_model.h"
#include "channel/noise.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "sim/scenario.h"
#include "tag/tag.h"

namespace lfbs {
namespace {

/// Single-tag capture noisy enough that the primary decode pass returns
/// nothing and the degraded-mode fallback ladder has to run (same recipe
/// as bench_robustness_sweep).
signal::SampleBuffer low_snr_capture(double snr_db, std::uint64_t seed) {
  const Complex h{0.08, 0.06};
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = channel::noise_power_for_snr(std::norm(h), snr_db);
  channel::ChannelModel ch;
  ch.add_tag(h);
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  std::vector<std::vector<bool>> frames;
  for (int f = 0; f < 8; ++f) {
    frames.push_back(protocol::build_frame(rng.bits(96), fc));
  }
  tag::TagConfig tc;
  tag::Tag tag(tc, rng);
  const Seconds duration = 8 * 113.0 / tc.rate + 1e-3;
  const auto tx = tag.transmit_epoch(frames, duration, rng);
  std::vector<signal::StateTimeline> timelines{tx.timeline};
  return receiver.receive_epoch(timelines, duration, rng);
}

/// Property: decoded CRC-valid payloads are a sub-multiset of what was
/// sent — the decoder never fabricates payloads — across random seeds and
/// node counts.
class NoFabricationSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(NoFabricationSweep, ValidPayloadsWereSent) {
  const auto [nodes, seed] = GetParam();
  Rng rng(seed);
  sim::ScenarioConfig sc;
  sc.num_tags = nodes;
  sim::Scenario scenario(sc, rng);
  const auto outcome = scenario.run_epoch(scenario.default_decoder(), rng);

  std::multiset<std::vector<bool>> sent(outcome.sent_payloads.begin(),
                                        outcome.sent_payloads.end());
  for (const auto& payload : outcome.decode.valid_payloads()) {
    const auto it = sent.find(payload);
    ASSERT_NE(it, sent.end()) << "decoder fabricated a CRC-valid payload";
    sent.erase(it);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndNodes, NoFabricationSweep,
    ::testing::Combine(::testing::Values(2u, 6u, 12u),
                       ::testing::Values(11u, 22u, 33u, 44u)));

/// Property: minimum recovery rates hold across seeds at paper-scale
/// deployments (regression floor for decoder changes).
class RecoveryFloorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecoveryFloorSweep, MeetsFloor) {
  const std::size_t nodes = GetParam();
  std::size_t sent = 0, recovered = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 977);
    sim::ScenarioConfig sc;
    sc.num_tags = nodes;
    sim::Scenario scenario(sc, rng);
    const auto outcome = scenario.run_epoch(scenario.default_decoder(), rng);
    sent += outcome.sent_payloads.size();
    recovered += outcome.payloads_recovered;
  }
  const double rate =
      static_cast<double>(recovered) / static_cast<double>(sent);
  // Floors set ~10 points under current behaviour to catch regressions
  // without flaking on seed luck (see EXPERIMENTS.md for current values).
  const double floor = nodes <= 4 ? 0.85 : (nodes <= 8 ? 0.75 : 0.65);
  EXPECT_GE(rate, floor) << nodes << " nodes";
}

INSTANTIATE_TEST_SUITE_P(Nodes, RecoveryFloorSweep,
                         ::testing::Values(2u, 4u, 8u, 16u));

/// Property: decode results are byte-for-byte deterministic for a given
/// capture, regardless of how many times we decode.
TEST(Determinism, RepeatDecodesIdentical) {
  Rng rng(99);
  sim::ScenarioConfig sc;
  sc.num_tags = 6;
  sim::Scenario scenario(sc, rng);
  std::vector<std::vector<std::vector<bool>>> payloads(6);
  for (auto& p : payloads) p.push_back(rng.bits(96));
  const auto buffer = scenario.capture_epoch(payloads, rng);
  const core::LfDecoder decoder(scenario.default_decoder());
  const auto a = decoder.decode(buffer);
  const auto b = decoder.decode(buffer);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].bits, b.streams[i].bits);
    EXPECT_DOUBLE_EQ(a.streams[i].start_sample, b.streams[i].start_sample);
    EXPECT_DOUBLE_EQ(a.streams[i].snr_db, b.streams[i].snr_db);
  }
}

/// Property: stage toggles are monotone — enabling IQ recovery never
/// reduces the number of recovered payloads on the same capture (averaged
/// over seeds; individual captures can tie).
TEST(Monotonicity, CollisionRecoveryNeverNetHarms) {
  std::size_t with = 0, without = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    sim::ScenarioConfig sc;
    sc.num_tags = 10;
    sim::Scenario scenario(sc, rng);
    std::vector<std::vector<std::vector<bool>>> payloads(10);
    Rng payload_rng(seed);
    for (auto& p : payloads) p.push_back(payload_rng.bits(96));
    auto dc = scenario.default_decoder();
    const auto buffer = scenario.capture_epoch(payloads, rng);
    const auto on = core::LfDecoder(dc).decode(buffer);
    dc.collision_recovery = false;
    const auto off = core::LfDecoder(dc).decode(buffer);
    with += on.valid_payloads().size();
    without += off.valid_payloads().size();
  }
  EXPECT_GE(with, without);
}

/// Property: the confidence + fallback pipeline is deterministic even when
/// the degraded-mode ladder fires. A low-SNR capture decoded twice with an
/// identical config must produce identical bits, bit-identical confidence
/// fields, and identical fallback counters — the ladder's reseeded k-means
/// uses a config-derived seed, never wall-clock entropy.
TEST(Determinism, FallbackLadderDecodesIdentical) {
  const auto buffer = low_snr_capture(8.0, 77);
  core::DecoderConfig dc;
  dc.robustness.fallback = true;
  const core::LfDecoder decoder(dc);
  const auto a = decoder.decode(buffer);
  const auto b = decoder.decode(buffer);
  EXPECT_GT(a.diagnostics.fallback_passes, 0u);  // the ladder actually ran
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].bits, b.streams[i].bits);
    const auto& ca = a.streams[i].confidence;
    const auto& cb = b.streams[i].confidence;
    EXPECT_DOUBLE_EQ(ca.edge_snr_db, cb.edge_snr_db);
    EXPECT_DOUBLE_EQ(ca.edge_confidence, cb.edge_confidence);
    EXPECT_DOUBLE_EQ(ca.path_margin, cb.path_margin);
    EXPECT_DOUBLE_EQ(ca.cluster_separation, cb.cluster_separation);
    EXPECT_DOUBLE_EQ(ca.score(), cb.score());
    EXPECT_EQ(ca.erasures, cb.erasures);
    EXPECT_EQ(ca.stage, cb.stage);
  }
  EXPECT_EQ(a.diagnostics.fallback_passes, b.diagnostics.fallback_passes);
  EXPECT_EQ(a.diagnostics.fallback_recoveries,
            b.diagnostics.fallback_recoveries);
  EXPECT_EQ(a.diagnostics.erasures, b.diagnostics.erasures);
  EXPECT_EQ(a.valid_payloads(), b.valid_payloads());
}

/// Property: per-stream SNR estimates respond to channel noise.
TEST(SnrEstimate, TracksNoiseFloor) {
  double quiet_snr = 0.0, loud_snr = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    Rng rng(7);
    sim::ScenarioConfig sc;
    sc.num_tags = 1;
    sc.noise_power = pass == 0 ? 1e-6 : 1e-3;
    sim::Scenario scenario(sc, rng);
    const auto outcome = scenario.run_epoch(scenario.default_decoder(), rng);
    ASSERT_FALSE(outcome.decode.streams.empty());
    (pass == 0 ? quiet_snr : loud_snr) = outcome.decode.streams[0].snr_db;
  }
  EXPECT_GT(quiet_snr, loud_snr + 10.0);
}

}  // namespace
}  // namespace lfbs

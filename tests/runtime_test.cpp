// Tests for the concurrent streaming decode runtime: ring-buffer
// backpressure, sample sources, frame bus fan-out, and — the load-bearing
// property — bit-exact equivalence between the parallel pipeline and the
// serial WindowedDecoder at every worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include <sstream>

#include "channel/channel_model.h"
#include "core/windowed_decoder.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/frame_bus.h"
#include "runtime/ring_buffer.h"
#include "runtime/runtime.h"
#include "runtime/sample_source.h"
#include "signal/iq_io.h"
#include "sim/scenario.h"
#include "tag/tag.h"

namespace lfbs::runtime {
namespace {

struct LongCapture {
  signal::SampleBuffer buffer{1e6, std::size_t{0}};
  std::vector<std::vector<bool>> payloads;
};

/// A multi-window capture: `num_tags` tags stream frames for `duration`
/// (same construction as the core windowed-decoder tests).
LongCapture make_capture(std::size_t num_tags, Seconds duration,
                         std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = 150.0;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  LongCapture cap;
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      cap.payloads.push_back(rng.bits(96));
      frames.push_back(protocol::build_frame(cap.payloads.back(), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  cap.buffer = receiver.receive_epoch(timelines, duration, rng);
  return cap;
}

/// Bit-for-bit stream equality: positions, rates, bits, frames, vectors.
void expect_identical(const core::DecodeResult& a,
                      const core::DecodeResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const auto& sa = a.streams[i];
    const auto& sb = b.streams[i];
    EXPECT_EQ(sa.start_sample, sb.start_sample) << "stream " << i;
    EXPECT_EQ(sa.rate, sb.rate) << "stream " << i;
    EXPECT_EQ(sa.collided, sb.collided) << "stream " << i;
    EXPECT_EQ(sa.edge_vector, sb.edge_vector) << "stream " << i;
    EXPECT_EQ(sa.bits, sb.bits) << "stream " << i;
    ASSERT_EQ(sa.frames.size(), sb.frames.size()) << "stream " << i;
    for (std::size_t f = 0; f < sa.frames.size(); ++f) {
      EXPECT_EQ(sa.frames[f].payload, sb.frames[f].payload);
      EXPECT_EQ(sa.frames[f].valid(), sb.frames[f].valid());
    }
  }
  EXPECT_EQ(a.diagnostics.edges, b.diagnostics.edges);
  EXPECT_EQ(a.diagnostics.groups, b.diagnostics.groups);
  EXPECT_EQ(a.diagnostics.collision_groups, b.diagnostics.collision_groups);
  EXPECT_EQ(a.diagnostics.unresolved_groups,
            b.diagnostics.unresolved_groups);
}

TEST(BoundedRing, PushPopOrderAndClose) {
  BoundedRing<int> ring(4);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_EQ(ring.pop().value(), 1);
  EXPECT_EQ(ring.pop().value(), 2);
  ring.close();
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_FALSE(ring.push(3));
}

TEST(BoundedRing, OfferDropsWhenFullAndCounts) {
  BoundedRing<int> ring(2);
  EXPECT_TRUE(ring.offer(1));
  EXPECT_TRUE(ring.offer(2));
  EXPECT_FALSE(ring.offer(3));
  EXPECT_FALSE(ring.offer(4));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.depth(), 2u);
  EXPECT_EQ(ring.high_watermark(), 2u);
  ring.close();
}

TEST(BoundedRing, SlowConsumerBoundsMemory) {
  // A producer far faster than the consumer: the ring must never exceed
  // its capacity and must account for every dropped item.
  BoundedRing<int> ring(8);
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    while (ring.pop().has_value()) {
      ++consumed;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const int produced = 2000;
  int accepted = 0;
  for (int i = 0; i < produced; ++i) {
    if (ring.offer(i)) ++accepted;
  }
  ring.close();
  consumer.join();
  EXPECT_LE(ring.high_watermark(), 8u);
  EXPECT_GT(ring.dropped(), 0u);
  EXPECT_EQ(ring.dropped() + static_cast<std::size_t>(accepted),
            static_cast<std::size_t>(produced));
  EXPECT_EQ(consumed.load(), accepted);
}

TEST(IqReader, StreamsSameSamplesAsWholeFileLoad) {
  Rng rng(31);
  std::vector<Complex> samples;
  for (int i = 0; i < 10000; ++i) {
    samples.emplace_back(rng.gaussian(), rng.gaussian());
  }
  const signal::SampleBuffer buffer(2.5 * kMsps, std::move(samples));
  const std::string path = ::testing::TempDir() + "iq_reader_test.lfbsiq";
  signal::save_iq(buffer, path);

  signal::IqReader reader(path);
  EXPECT_EQ(reader.sample_rate(), buffer.sample_rate());
  EXPECT_EQ(reader.total(), buffer.size());
  std::vector<Complex> streamed;
  while (reader.read(777, streamed) > 0) {
  }
  const auto whole = signal::load_iq(path);
  ASSERT_EQ(streamed.size(), whole.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed[i], whole[i]) << "sample " << i;
  }
  std::remove(path.c_str());
}

TEST(MemorySource, ChunksCoverBufferContiguously) {
  Rng rng(32);
  std::vector<Complex> samples;
  for (int i = 0; i < 1000; ++i) samples.emplace_back(rng.uniform(), 0.0);
  const signal::SampleBuffer buffer(1e6, std::move(samples));
  MemorySource source(buffer, 128);
  std::uint64_t next = 0;
  while (auto chunk = source.next_chunk()) {
    EXPECT_EQ(chunk->first_sample, next);
    EXPECT_LE(chunk->size(), 128u);
    for (std::size_t i = 0; i < chunk->size(); ++i) {
      EXPECT_EQ(chunk->samples[i], buffer[next + i]);
    }
    next += chunk->size();
  }
  EXPECT_EQ(next, buffer.size());
}

TEST(ScenarioSource, GeneratesEpochsAndRecordsPayloads) {
  Rng rng(33);
  sim::ScenarioConfig sc;
  sc.num_tags = 4;
  sc.sample_rate = 5.0 * kMsps;
  sim::Scenario scenario(sc, rng);
  ScenarioSource::Config config;
  config.epochs = 3;
  config.frames_per_tag = 2;
  config.chunk_samples = 4096;
  ScenarioSource source(scenario, rng, config);
  EXPECT_EQ(source.sample_rate(), sc.sample_rate);
  std::uint64_t next = 0;
  while (auto chunk = source.next_chunk()) {
    EXPECT_EQ(chunk->first_sample, next);
    next += chunk->size();
  }
  EXPECT_EQ(source.sent_payloads().size(), 3u * 4u * 2u);
  EXPECT_GT(next, 0u);
}

TEST(FrameBus, SubscribeUnsubscribePublish) {
  FrameBus bus;
  int a = 0;
  int b = 0;
  const auto ida = bus.subscribe([&](const FrameEvent&) { ++a; });
  const auto idb = bus.subscribe([&](const FrameEvent&) { ++b; });
  bus.publish({});
  bus.unsubscribe(ida);
  bus.publish({});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(bus.published(), 2u);
  bus.unsubscribe(idb);
}

TEST(FrameBus, ConcurrentPublishersDeliverEveryEvent) {
  // Several threads publish while another churns subscriptions: the
  // permanent subscriber must see every single event exactly once and the
  // bus's own accounting must match. (This is the TSan target for the
  // bus: publish holds the subscriber list stable against the churn.)
  FrameBus bus;
  std::atomic<std::size_t> seen{0};
  bus.subscribe([&](const FrameEvent&) { ++seen; });
  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kPerPublisher = 500;
  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    while (!stop_churn.load()) {
      const auto id = bus.subscribe([](const FrameEvent&) {});
      bus.unsubscribe(id);
    }
  });
  std::vector<std::thread> publishers;
  for (std::size_t p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      FrameEvent event;
      event.stream_index = p;
      for (std::size_t i = 0; i < kPerPublisher; ++i) bus.publish(event);
    });
  }
  for (auto& t : publishers) t.join();
  stop_churn = true;
  churn.join();
  EXPECT_EQ(seen.load(), kPublishers * kPerPublisher);
  EXPECT_EQ(bus.published(), kPublishers * kPerPublisher);
  EXPECT_EQ(bus.handler_exceptions(), 0u);
}

TEST(FrameBus, HandlerMaySubscribeReentrantly) {
  // A handler adding a subscriber mid-publish must not invalidate the
  // in-flight delivery (the COW snapshot stays stable); the new subscriber
  // starts receiving from the *next* publish.
  FrameBus bus;
  int late = 0;
  FrameBus::SubscriberId late_id = 0;
  bool added = false;
  bus.subscribe([&](const FrameEvent&) {
    if (!added) {
      added = true;
      late_id = bus.subscribe([&](const FrameEvent&) { ++late; });
    }
  });
  bus.publish({});
  EXPECT_EQ(late, 0) << "same-publish delivery would mean the snapshot "
                        "mutated mid-iteration";
  bus.publish({});
  EXPECT_EQ(late, 1);
  bus.unsubscribe(late_id);
  bus.publish({});
  EXPECT_EQ(late, 1);
  EXPECT_EQ(bus.handler_exceptions(), 0u);
}

TEST(FrameBus, HandlerMayUnsubscribeItselfAndPeersReentrantly) {
  // Self-removal and peer-removal from inside a handler: the current
  // publish still delivers to every subscriber captured in its snapshot,
  // and the removals take effect afterwards.
  FrameBus bus;
  int self = 0;
  int peer = 0;
  FrameBus::SubscriberId self_id = 0;
  FrameBus::SubscriberId peer_id = 0;
  peer_id = bus.subscribe([&](const FrameEvent&) { ++peer; });
  self_id = bus.subscribe([&](const FrameEvent&) {
    ++self;
    bus.unsubscribe(self_id);   // remove myself
    bus.unsubscribe(peer_id);   // remove a peer ahead of me in the list
  });
  int after = 0;
  bus.subscribe([&](const FrameEvent&) { ++after; });
  bus.publish({});
  // Snapshot semantics: everyone subscribed at publish time ran once —
  // including the subscriber after the one doing the removing.
  EXPECT_EQ(peer, 1);
  EXPECT_EQ(self, 1);
  EXPECT_EQ(after, 1);
  bus.publish({});
  EXPECT_EQ(peer, 1);
  EXPECT_EQ(self, 1);
  EXPECT_EQ(after, 2);
  EXPECT_EQ(bus.handler_exceptions(), 0u);
  EXPECT_EQ(bus.published(), 2u);
}

TEST(DecodeRuntime, TracedRunStaysBitIdenticalAndLogsEveryFrame) {
  // The tentpole's zero-interference contract: attaching the tracer and
  // the structured event log must not change a single decoded bit, and
  // every frame the bus publishes must appear as one "frame" JSONL line.
  const auto cap = make_capture(2, 50e-3, 48);
  core::WindowedDecoderConfig wc;
  const auto serial = core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(serial.streams.empty());

  std::ostringstream jsonl;
  obs::JsonlWriter writer(jsonl);
  obs::EventLog log(writer);
  obs::Tracer tracer;
  tracer.set_sink(&writer);
  obs::set_tracer(&tracer);
  obs::set_event_log(&log);

  RuntimeConfig rc;
  rc.windowed = wc;
  rc.workers = 2;
  DecodeRuntime rt(rc);
  const auto run = rt.decode(cap.buffer, 8192);

  obs::set_tracer(nullptr);
  obs::set_event_log(nullptr);
  tracer.flush();

  expect_identical(serial, run.decode);
  EXPECT_GT(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  // Count the typed lines back out of the stream.
  std::size_t frame_lines = 0;
  std::size_t span_lines = 0;
  std::string line;
  std::istringstream in(jsonl.str());
  while (std::getline(in, line)) {
    const auto parsed = obs::parse_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    const std::string type = parsed->member_str("type", "");
    if (type == "frame") ++frame_lines;
    if (type == "span") ++span_lines;
  }
  EXPECT_EQ(frame_lines, run.stats.frames_published);
  EXPECT_EQ(span_lines, tracer.recorded());
}

TEST(DecodeRuntime, ParallelMatchesSerialBitForBit) {
  // The acceptance property: the same multi-tag capture decoded through
  // the serial WindowedDecoder and through the runtime at 1, 2, and 4
  // workers yields identical stitched frames.
  const auto cap = make_capture(3, 60e-3, 41);
  core::WindowedDecoderConfig wc;
  const auto serial = core::WindowedDecoder(wc).decode(cap.buffer);
  ASSERT_FALSE(serial.streams.empty());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    RuntimeConfig rc;
    rc.windowed = wc;
    rc.workers = workers;
    DecodeRuntime rt(rc);
    const auto run = rt.decode(cap.buffer, 10000);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_identical(serial, run.decode);
    EXPECT_EQ(run.stats.samples_in, cap.buffer.size());
    EXPECT_EQ(run.stats.samples_gap, 0u);
    EXPECT_EQ(run.stats.chunks_dropped, 0u);
    EXPECT_EQ(run.stats.windows_decoded, run.stats.windows_dispatched);
  }
}

TEST(DecodeRuntime, ShortCaptureMatchesSerialFallThrough) {
  // A capture under 1.5 windows must take the same whole-buffer plain
  // decode inside the runtime as WindowedDecoder::decode does serially.
  const auto cap = make_capture(2, 8e-3, 42);
  core::WindowedDecoderConfig wc;
  const auto serial = core::WindowedDecoder(wc).decode(cap.buffer);
  RuntimeConfig rc;
  rc.windowed = wc;
  rc.workers = 3;
  DecodeRuntime rt(rc);
  const auto run = rt.decode(cap.buffer, 4096);
  expect_identical(serial, run.decode);
  EXPECT_EQ(run.stats.windows_decoded, 1u);
}

TEST(DecodeRuntime, RepeatedRunsAreReproducible) {
  // Worker scheduling varies run to run; the per-window Rng streams keyed
  // by window index make the output independent of it.
  const auto cap = make_capture(2, 50e-3, 43);
  core::WindowedDecoderConfig wc;
  RuntimeConfig rc;
  rc.windowed = wc;
  rc.workers = 4;
  const auto first = DecodeRuntime(rc).decode(cap.buffer, 8192);
  const auto second = DecodeRuntime(rc).decode(cap.buffer, 8192);
  expect_identical(first.decode, second.decode);
}

TEST(DecodeRuntime, FrameBusDeliversEveryStitchedFrame) {
  const auto cap = make_capture(2, 50e-3, 44);
  core::WindowedDecoderConfig wc;
  RuntimeConfig rc;
  rc.windowed = wc;
  rc.workers = 2;
  DecodeRuntime rt(rc);
  std::size_t valid = 0;
  std::size_t total = 0;
  rt.bus().subscribe([&](const FrameEvent& event) {
    ++total;
    if (event.frame.valid()) ++valid;
  });
  const auto run = rt.decode(cap.buffer, 8192);
  std::size_t expected_total = 0;
  for (const auto& s : run.decode.streams) expected_total += s.frames.size();
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(run.stats.frames_published, expected_total);
  EXPECT_GT(valid, 0u);
}

TEST(DecodeRuntime, BackpressureBoundsRingAndCountsDrops) {
  // Live-source policy: a consumer slower than the producer (decode is
  // orders of magnitude slower than an in-memory source) must never grow
  // the ring past its capacity; overflow surfaces as counted chunk drops,
  // and the assembler zero-fills the gaps so decode still completes.
  const auto cap = make_capture(2, 60e-3, 45);
  RuntimeConfig rc;
  rc.workers = 1;
  rc.ring_capacity = 2;
  rc.drop_when_full = true;
  DecodeRuntime rt(rc);
  const auto run = rt.decode(cap.buffer, 2048);
  EXPECT_GT(run.stats.chunks_dropped, 0u);
  EXPECT_LE(run.stats.ring_high_watermark, 2u);
  // Every chunk is accounted for: decoded, zero-filled, or dropped off the
  // tail (a trailing drop has no later chunk to reveal the gap).
  EXPECT_LE(run.stats.samples_in + run.stats.samples_gap,
            cap.buffer.size());
  EXPECT_EQ(run.stats.chunks_in + run.stats.chunks_dropped,
            (cap.buffer.size() + 2047) / 2048);
  EXPECT_GT(run.stats.samples_in, 0u);
}

/// A source with a hole in the middle, as left behind by ring overflow on
/// a live capture: the assembler must zero-fill the missing span so the
/// surviving samples keep their absolute window positions.
class GappySource : public SampleSource {
 public:
  GappySource(const signal::SampleBuffer& buffer, std::size_t gap_begin,
              std::size_t gap_end, std::size_t chunk_samples)
      : buffer_(buffer),
        gap_begin_(gap_begin),
        gap_end_(gap_end),
        chunk_samples_(chunk_samples) {}

  SampleRate sample_rate() const override { return buffer_.sample_rate(); }

  std::optional<SampleChunk> next_chunk() override {
    if (position_ == gap_begin_) position_ = gap_end_;
    if (position_ >= buffer_.size()) return std::nullopt;
    const std::size_t end =
        std::min({buffer_.size(), position_ + chunk_samples_,
                  position_ < gap_begin_ ? gap_begin_ : buffer_.size()});
    SampleChunk chunk;
    chunk.first_sample = position_;
    const auto view = buffer_.slice(position_, end);
    chunk.samples.assign(view.begin(), view.end());
    position_ = end;
    return chunk;
  }

 private:
  const signal::SampleBuffer& buffer_;
  std::size_t gap_begin_;
  std::size_t gap_end_;
  std::size_t chunk_samples_;
  std::size_t position_ = 0;
};

TEST(DecodeRuntime, ZeroFillsDroppedChunkGaps) {
  const auto cap = make_capture(2, 60e-3, 47);
  const std::size_t gap_begin = 110000;
  const std::size_t gap_end = 130000;
  GappySource source(cap.buffer, gap_begin, gap_end, 8192);
  RuntimeConfig rc;
  rc.workers = 2;
  DecodeRuntime rt(rc);
  const auto run = rt.run(source);
  EXPECT_EQ(run.stats.samples_gap, gap_end - gap_begin);
  EXPECT_EQ(run.stats.samples_in + run.stats.samples_gap,
            cap.buffer.size());
  // The zero-filled stream decodes like the same capture with the span
  // silenced — identical, because the pipelines share every stage.
  signal::SampleBuffer silenced = cap.buffer;
  for (std::size_t i = gap_begin; i < gap_end; ++i) silenced[i] = Complex{};
  const auto serial =
      core::WindowedDecoder(core::WindowedDecoderConfig{}).decode(silenced);
  expect_identical(serial, run.decode);
}

TEST(DecodeRuntime, EmptySourceYieldsEmptyResult) {
  const signal::SampleBuffer empty(1e6, std::size_t{0});
  RuntimeConfig rc;
  rc.workers = 2;
  DecodeRuntime rt(rc);
  const auto run = rt.decode(empty);
  EXPECT_TRUE(run.decode.streams.empty());
  EXPECT_EQ(run.stats.samples_in, 0u);
}

TEST(DecodeRuntime, ScenarioSourceEndToEndRecovery) {
  // Live synthetic capture → runtime → recovered payloads: the zero-to-aha
  // path a deployment follows, minus the SDR.
  Rng rng(46);
  sim::ScenarioConfig sc;
  sc.num_tags = 6;
  sim::Scenario scenario(sc, rng);
  ScenarioSource::Config config;
  config.epochs = 1;
  ScenarioSource source(scenario, rng, config);
  RuntimeConfig rc;
  rc.windowed.decoder = scenario.default_decoder();
  rc.workers = 2;
  DecodeRuntime rt(rc);
  const auto run = rt.run(source);
  std::size_t recovered = 0;
  const auto decoded = run.decode.valid_payloads();
  for (const auto& sent : source.sent_payloads()) {
    for (const auto& got : decoded) {
      if (sent == got) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(recovered, source.sent_payloads().size() / 2);
}

}  // namespace
}  // namespace lfbs::runtime

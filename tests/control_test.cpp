// Tests for the fleet control plane (src/control): FleetTracker state
// folding, EpochScheduler determinism and knobs, the step-up hysteresis
// it drives through RateController, the LFBW1 v5 control messages (codec
// and live round-trip over a FrameServer), and the two acceptance
// properties — the greedy scheduler strictly beats the static baseline
// on a collision-heavy fleet, and a run with the control loop merely
// observing stays bit-identical to the serial WindowedDecoder reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "control/control_loop.h"
#include "control/fleet_tracker.h"
#include "control/scheduler.h"
#include "control/spec.h"
#include "core/windowed_decoder.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/wire.h"
#include "obs/events.h"
#include "obs/json.h"
#include "protocol/rate_control.h"
#include "reader/health_ledger.h"
#include "runtime/runtime.h"
#include "sim/scenario.h"

namespace lfbs::control {
namespace {

runtime::FrameEvent make_frame(std::size_t stream, BitRate rate, bool valid,
                               bool collided, double confidence,
                               std::size_t payload_bits = 96) {
  runtime::FrameEvent event;
  event.stream_index = stream;
  event.rate = rate;
  event.collided = collided;
  event.confidence = confidence;
  event.frame.payload.assign(payload_bits, true);
  event.frame.anchor_ok = valid;
  event.frame.crc_ok = valid;
  return event;
}

core::DecodedStream make_stream(Complex edge_vector, BitRate rate,
                                std::size_t valid_frames,
                                std::size_t bad_frames, bool collided) {
  core::DecodedStream s;
  s.rate = rate;
  s.collided = collided;
  s.edge_vector = edge_vector;
  s.confidence.edge_confidence = 0.9;
  for (std::size_t i = 0; i < valid_frames; ++i) {
    protocol::ParsedFrame f;
    f.payload.assign(96, true);
    f.anchor_ok = true;
    f.crc_ok = true;
    s.frames.push_back(f);
  }
  for (std::size_t i = 0; i < bad_frames; ++i) {
    s.frames.emplace_back();
  }
  return s;
}

TagState make_tag(std::uint64_t key, BitRate rate, double success,
                  double confidence, double pressure) {
  TagState tag;
  tag.key = key;
  tag.rate = rate;
  tag.epochs_seen = 4;
  tag.success = success;
  tag.confidence = confidence;
  tag.collision_pressure = pressure;
  tag.goodput_bps = success * rate;
  return tag;
}

// --- FleetTracker -----------------------------------------------------------

TEST(FleetTracker, FoldsFrameEventsIntoPerTagState) {
  FleetTracker tracker;
  const Seconds epoch = 10e-3;
  // Stream 0: two clean frames. Stream 1: one clean, one failed, collided.
  tracker.observe_frame(make_frame(0, 100e3, true, false, 0.9));
  tracker.observe_frame(make_frame(0, 100e3, true, false, 0.8));
  tracker.observe_frame(make_frame(1, 50e3, true, true, 0.5));
  tracker.observe_frame(make_frame(1, 50e3, false, true, 0.3));
  tracker.end_epoch(0, epoch);

  const FleetSnapshot snap = tracker.snapshot();
  ASSERT_EQ(snap.tags.size(), 2u);
  EXPECT_EQ(snap.epoch, 0u);
  // Keys are stream_index + 1 (0 is the no-tag sentinel), sorted.
  EXPECT_EQ(snap.tags[0].key, 1u);
  EXPECT_EQ(snap.tags[1].key, 2u);

  const TagState& a = snap.tags[0];
  EXPECT_EQ(a.rate, 100e3);
  EXPECT_EQ(a.frames_total, 2u);
  EXPECT_EQ(a.frames_valid, 2u);
  EXPECT_DOUBLE_EQ(a.success, 1.0);  // first epoch seeds the EWMA directly
  EXPECT_NEAR(a.confidence, 0.85, 1e-12);
  EXPECT_NEAR(a.goodput_bps, 2.0 * 96.0 / epoch, 1e-6);
  EXPECT_DOUBLE_EQ(a.collision_pressure, 0.0);

  const TagState& b = snap.tags[1];
  EXPECT_DOUBLE_EQ(b.success, 0.5);
  EXPECT_DOUBLE_EQ(b.collision_pressure, 1.0);
  EXPECT_EQ(b.frames_collided, 2u);

  // Fleet aggregates: 2 of 4 frames collided, 3 valid payloads.
  EXPECT_DOUBLE_EQ(snap.collision_pressure, 0.5);
  EXPECT_NEAR(snap.aggregate_goodput_bps, 3.0 * 96.0 / epoch, 1e-6);
}

TEST(FleetTracker, AbsentTagsDecayAndAreEventuallyForgotten) {
  FleetTrackerConfig config;
  config.alpha = 0.5;
  config.forget_after = 3;
  FleetTracker tracker(config);
  tracker.observe_frame(make_frame(0, 100e3, true, false, 1.0));
  tracker.end_epoch(0, 1e-3);
  const double s0 = tracker.snapshot().tags[0].success;
  EXPECT_DOUBLE_EQ(s0, 1.0);

  // Absence is decode failure: success decays by (1 - alpha) per epoch.
  tracker.end_epoch(1, 1e-3);
  EXPECT_DOUBLE_EQ(tracker.snapshot().tags[0].success, 0.5);
  tracker.end_epoch(2, 1e-3);
  EXPECT_DOUBLE_EQ(tracker.snapshot().tags[0].success, 0.25);
  ASSERT_EQ(tracker.tags_tracked(), 1u);

  // Unseen for forget_after epochs: the tag left range, drop it.
  tracker.end_epoch(3, 1e-3);
  EXPECT_EQ(tracker.tags_tracked(), 0u);
}

TEST(FleetTracker, SessionPathMergesPolarityFlippedStreams) {
  // Two streams of one tag: the second decode recovered the same channel
  // vector with flipped levels. The polarity-tolerant identity (the
  // HealthLedger convention) must fold them into one tracked tag.
  FleetTracker tracker;
  core::DecodeResult result;
  result.streams.push_back(make_stream({0.1, 0.05}, 100e3, 2, 0, false));
  result.streams.push_back(
      make_stream({-0.101, -0.0502}, 100e3, 1, 1, false));
  tracker.observe_decode(result);
  tracker.end_epoch(0, 1e-3);
  ASSERT_EQ(tracker.tags_tracked(), 1u);
  const TagState tag = tracker.snapshot().tags[0];
  EXPECT_EQ(tag.frames_total, 4u);
  EXPECT_EQ(tag.frames_valid, 3u);

  // A genuinely different vector forks a second tag.
  core::DecodeResult other;
  other.streams.push_back(make_stream({0.02, -0.09}, 50e3, 1, 0, false));
  tracker.observe_decode(other);
  tracker.end_epoch(1, 1e-3);
  EXPECT_EQ(tracker.tags_tracked(), 2u);
}

TEST(FleetTracker, ObserveHealthStampsLedgerStateOntoTags) {
  const Complex vector{0.1, 0.02};
  FleetTracker tracker;
  core::DecodeResult seen;
  seen.streams.push_back(make_stream(vector, 100e3, 1, 0, false));
  tracker.observe_decode(seen);
  tracker.end_epoch(0, 1e-3);

  // Drive a ledger entry with the same vector into quarantine.
  reader::HealthLedger ledger;
  core::DecodeResult failing;
  failing.streams.push_back(make_stream(vector, 100e3, 0, 1, false));
  for (std::size_t i = 0; i < ledger.config().quarantine_after; ++i) {
    ledger.observe(failing);
  }
  ASSERT_EQ(ledger.entries().size(), 1u);
  ASSERT_EQ(ledger.entries()[0].state, reader::HealthState::kQuarantined);

  tracker.observe_health(ledger);
  EXPECT_EQ(tracker.snapshot().tags[0].health,
            reader::HealthState::kQuarantined);
}

// --- EpochScheduler ---------------------------------------------------------

FleetSnapshot mixed_fleet() {
  FleetSnapshot fleet;
  fleet.epoch = 7;
  fleet.collision_pressure = 0.4;
  fleet.tags.push_back(make_tag(1, 100e3, 0.9, 0.9, 0.5));
  fleet.tags.push_back(make_tag(2, 100e3, 0.8, 0.8, 0.6));
  fleet.tags.push_back(make_tag(3, 100e3, 0.4, 0.5, 0.3));
  fleet.tags.push_back(make_tag(4, 50e3, 0.6, 0.7, 0.2));
  fleet.tags.push_back(make_tag(5, 10e3, 0.1, 0.05, 0.0));
  return fleet;
}

TEST(EpochScheduler, GreedyIsDeterministicUnderAFixedSeed) {
  const FleetSnapshot fleet = mixed_fleet();
  const protocol::RatePlan rates = protocol::RatePlan::paper_rates();
  const ControlObjective objective;
  const GreedyMarginalPolicy a(12345);
  const GreedyMarginalPolicy b(12345);
  const EpochPlan pa = a.plan(fleet, rates, objective, 8);
  const EpochPlan pb = b.plan(fleet, rates, objective, 8);
  ASSERT_EQ(pa.assignments.size(), pb.assignments.size());
  for (std::size_t i = 0; i < pa.assignments.size(); ++i) {
    EXPECT_EQ(pa.assignments[i].tag, pb.assignments[i].tag);
    EXPECT_EQ(pa.assignments[i].rate, pb.assignments[i].rate);
    EXPECT_EQ(pa.assignments[i].predicted_goodput,
              pb.assignments[i].predicted_goodput);
  }
  EXPECT_EQ(pa.predicted_goodput_bps, pb.predicted_goodput_bps);

  // Assignments come out sorted by tag key and only use plan rates.
  for (std::size_t i = 1; i < pa.assignments.size(); ++i) {
    EXPECT_LT(pa.assignments[i - 1].tag, pa.assignments[i].tag);
  }
  for (const TagAssignment& assign : pa.assignments) {
    EXPECT_TRUE(rates.is_valid(assign.rate)) << assign.rate;
  }
}

TEST(EpochScheduler, ObjectiveKnobsConstrainThePlan) {
  const FleetSnapshot fleet = mixed_fleet();
  const protocol::RatePlan rates = protocol::RatePlan::paper_rates();
  const GreedyMarginalPolicy policy;

  // max_rate caps every assignment.
  ControlObjective capped;
  capped.max_rate = 10e3;
  for (const TagAssignment& a : policy.plan(fleet, rates, capped, 8)
           .assignments) {
    EXPECT_LE(a.rate, 10e3);
  }

  // min_confidence pins weak tags (tag 5 at 0.05) to the base rate even
  // though an unconstrained plan might speed them up.
  ControlObjective confident;
  confident.min_confidence = 0.5;
  const EpochPlan plan = policy.plan(fleet, rates, confident, 8);
  for (const TagAssignment& a : plan.assignments) {
    if (a.tag == 5) {
      EXPECT_EQ(a.rate, rates.min());
    }
  }

  // The epoch budget bounds the aggregate rate in base-rate units.
  ControlObjective budgeted;
  budgeted.epoch_budget = 10.0;  // 10 × 0.5 kbps = 5 kbps aggregate
  double total = 0.0;
  for (const TagAssignment& a :
       policy.plan(fleet, rates, budgeted, 8).assignments) {
    total += a.rate;
  }
  EXPECT_LE(total, 10.0 * rates.min() + 1e-6);
}

TEST(EpochScheduler, StaticPolicyKeepsObservedRates) {
  const FleetSnapshot fleet = mixed_fleet();
  const protocol::RatePlan rates = protocol::RatePlan::paper_rates();
  const StaticAssignmentPolicy policy;
  const EpochPlan plan = policy.plan(fleet, rates, {}, 8);
  ASSERT_EQ(plan.assignments.size(), fleet.tags.size());
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    EXPECT_EQ(plan.assignments[i].rate, fleet.tags[i].rate);
  }
}

TEST(EpochScheduler, PolicyFactoryKnowsItsNames) {
  EXPECT_NE(make_policy("greedy", 1), nullptr);
  EXPECT_NE(make_policy("static", 1), nullptr);
  EXPECT_EQ(make_policy("sorcery", 1), nullptr);
}

// --- control spec parsing (the gateway's typed CLI surface) -----------------

TEST(ControlSpec, ParsesTheFullGrammar) {
  const ControlSpec spec = parse_control_spec(
      "policy=static,seed=9,target-goodput=5e5,min-confidence=0.4,"
      "max-rate=50e3,budget=12,penalty=2.5,freeze=1,alpha=0.5,forget=4,"
      "period-ms=8");
  EXPECT_EQ(spec.loop.policy, "static");
  EXPECT_EQ(spec.loop.seed, 9u);
  EXPECT_EQ(spec.loop.objective.target_goodput, 5e5);
  EXPECT_EQ(spec.loop.objective.min_confidence, 0.4);
  EXPECT_EQ(spec.loop.objective.max_rate, 50e3);
  EXPECT_EQ(spec.loop.objective.epoch_budget, 12.0);
  EXPECT_EQ(spec.loop.objective.collision_penalty, 2.5);
  EXPECT_TRUE(spec.loop.frozen);
  EXPECT_EQ(spec.loop.tracker.alpha, 0.5);
  EXPECT_EQ(spec.loop.tracker.forget_after, 4u);
  EXPECT_NEAR(spec.period, 8e-3, 1e-12);

  const ControlSpec defaults = parse_control_spec("on");
  EXPECT_EQ(defaults.loop.policy, "greedy");
  EXPECT_EQ(defaults.period, 0.0);
}

TEST(ControlSpec, RejectionsAreTyped) {
  const auto code_of = [](const std::string& spec) {
    try {
      parse_control_spec(spec);
    } catch (const ControlParseError& e) {
      return e.code();
    }
    ADD_FAILURE() << "spec '" << spec << "' parsed";
    return ControlError::kEmpty;
  };
  EXPECT_EQ(code_of(""), ControlError::kEmpty);
  EXPECT_EQ(code_of(",,"), ControlError::kEmpty);  // clauses all empty
  EXPECT_EQ(code_of("warp=9"), ControlError::kBadKey);
  EXPECT_EQ(code_of("policy=chaotic"), ControlError::kBadValue);
  EXPECT_EQ(code_of("alpha=1.5"), ControlError::kBadValue);
  EXPECT_EQ(code_of("min-confidence=2"), ControlError::kBadValue);
  EXPECT_EQ(code_of("budget=-1"), ControlError::kBadValue);
  EXPECT_EQ(code_of("forget=0"), ControlError::kBadValue);

  EXPECT_THROW(parse_policy_name("sorcery"), ControlParseError);
  EXPECT_EQ(parse_policy_name("static"), "static");
  EXPECT_EQ(parse_epoch_budget("16"), 16.0);
  EXPECT_THROW(parse_epoch_budget("0"), ControlParseError);
  EXPECT_THROW(parse_epoch_budget("12x"), ControlParseError);
}

// --- RateController step-up hysteresis (satellite 1) ------------------------

TEST(RateControllerStepUp, RequiresAStreakOfHealthyEpochs) {
  protocol::RateController::Config config;
  config.step_up_patience = 3;
  protocol::RateController controller(protocol::RatePlan::paper_rates(),
                                      100e3, config);
  ASSERT_EQ(controller.step_down().value(), 50e3);

  // Two healthy epochs build the streak but do not step yet.
  EXPECT_FALSE(controller.step_up(true).has_value());
  EXPECT_FALSE(controller.step_up(true).has_value());
  EXPECT_EQ(controller.healthy_streak(), 2u);
  // The third completes the streak: one notch up, streak spent.
  EXPECT_EQ(controller.step_up(true).value(), 100e3);
  EXPECT_EQ(controller.healthy_streak(), 0u);
  EXPECT_EQ(controller.current_max(), 100e3);
}

TEST(RateControllerStepUp, UnhealthyEpochAndStepDownResetTheStreak) {
  protocol::RateController::Config config;
  config.step_up_patience = 2;
  protocol::RateController controller(protocol::RatePlan::paper_rates(),
                                      100e3, config);
  ASSERT_TRUE(controller.step_down().has_value());

  EXPECT_FALSE(controller.step_up(true).has_value());
  EXPECT_FALSE(controller.step_up(false).has_value());  // resets
  EXPECT_EQ(controller.healthy_streak(), 0u);
  EXPECT_FALSE(controller.step_up(true).has_value());
  // A step_down mid-streak also resets: one healthy epoch after bad news
  // must not complete a pre-existing streak.
  ASSERT_TRUE(controller.step_down().has_value());  // 50k -> 10k, streak 0
  EXPECT_FALSE(controller.step_up(true).has_value());
  EXPECT_EQ(controller.step_up(true).value(), 50e3);
}

TEST(RateControllerStepUp, CeilingHoldsWithoutBurningTheStreak) {
  protocol::RateController::Config config;
  config.step_up_patience = 1;
  protocol::RateController controller(protocol::RatePlan::paper_rates(),
                                      100e3, config);
  // Already at the plan ceiling: never steps, never throws.
  EXPECT_FALSE(controller.step_up(true).has_value());
  EXPECT_FALSE(controller.step_up(true).has_value());
  EXPECT_EQ(controller.current_max(), 100e3);
}

// --- LFBW1 v5 control messages ---------------------------------------------

TEST(ControlWire, SetAndPlanRoundTripBitExactly) {
  net::ControlSet set;
  set.set_frozen = true;
  set.frozen = true;
  set.set_target_goodput = true;
  set.target_goodput = 123456.75;
  set.set_max_rate = true;
  set.max_rate = 50e3;

  net::ControlPlanMsg plan;
  plan.enabled = true;
  plan.frozen = true;
  plan.target_goodput = 123456.75;
  plan.min_confidence = 0.25;
  plan.max_rate = 50e3;
  plan.epoch = 42;
  plan.policy = "greedy";
  plan.predicted_goodput = 98765.5;
  plan.collision_pressure = 0.375;
  plan.assignments = {{1, 100e3, 90e3}, {7, 500.0, 250.0}};

  std::vector<std::uint8_t> bytes;
  net::encode_control_get(bytes);
  net::encode_control_set(set, bytes);
  net::encode_control_plan(plan, bytes);

  net::MessageReader reader;
  reader.feed(bytes.data(), bytes.size());
  const auto get = reader.next();
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->type, net::MsgType::kControlGet);

  const auto set_msg = reader.next();
  ASSERT_TRUE(set_msg.has_value());
  ASSERT_EQ(set_msg->type, net::MsgType::kControlSet);
  const net::ControlSet rset = net::decode_control_set(set_msg->body);
  EXPECT_TRUE(rset.set_frozen);
  EXPECT_TRUE(rset.frozen);
  EXPECT_TRUE(rset.set_target_goodput);
  EXPECT_EQ(rset.target_goodput, 123456.75);
  EXPECT_FALSE(rset.set_min_confidence);
  EXPECT_TRUE(rset.set_max_rate);
  EXPECT_EQ(rset.max_rate, 50e3);

  const auto plan_msg = reader.next();
  ASSERT_TRUE(plan_msg.has_value());
  ASSERT_EQ(plan_msg->type, net::MsgType::kControlPlan);
  const net::ControlPlanMsg rplan = net::decode_control_plan(plan_msg->body);
  EXPECT_TRUE(rplan.enabled);
  EXPECT_TRUE(rplan.frozen);
  EXPECT_EQ(rplan.target_goodput, 123456.75);
  EXPECT_EQ(rplan.min_confidence, 0.25);
  EXPECT_EQ(rplan.max_rate, 50e3);
  EXPECT_EQ(rplan.epoch, 42u);
  EXPECT_EQ(rplan.policy, "greedy");
  EXPECT_EQ(rplan.predicted_goodput, 98765.5);
  EXPECT_EQ(rplan.collision_pressure, 0.375);
  ASSERT_EQ(rplan.assignments.size(), 2u);
  EXPECT_EQ(rplan.assignments[0].tag, 1u);
  EXPECT_EQ(rplan.assignments[0].rate, 100e3);
  EXPECT_EQ(rplan.assignments[0].goodput, 90e3);
  EXPECT_EQ(rplan.assignments[1].tag, 7u);
  EXPECT_EQ(rplan.assignments[1].rate, 500.0);
}

TEST(ControlWire, GarbledAssignmentCountIsRejectedBeforeAllocation) {
  net::ControlPlanMsg plan;
  plan.enabled = true;
  plan.assignments = {{1, 100e3, 90e3}};
  std::vector<std::uint8_t> bytes;
  net::encode_control_plan(plan, bytes);
  // Inflate the assignment count beyond the remaining body bytes: a
  // validate-before-allocate decoder rejects instead of reserving GBs.
  // Body layout: flags + 3 knobs + epoch + policy(len 0) + 2 doubles,
  // then the u32 count — find it by patching the last 28 bytes' prefix.
  const std::size_t count_offset = bytes.size() - 24 - 4;
  bytes[count_offset] = 0xFF;
  bytes[count_offset + 1] = 0xFF;
  bytes[count_offset + 2] = 0xFF;
  bytes[count_offset + 3] = 0x7F;
  net::MessageReader reader;
  reader.feed(bytes.data(), bytes.size());
  const auto message = reader.next();
  ASSERT_TRUE(message.has_value());
  EXPECT_THROW(net::decode_control_plan(message->body),
               net::WireFormatError);
}

// --- ControlLoop ------------------------------------------------------------

TEST(ControlLoop, StepPublishesTypedEventsAndAppliesUnlessFrozen) {
  std::ostringstream jsonl;
  obs::JsonlWriter writer(jsonl);
  obs::EventLog log(writer);
  obs::set_event_log(&log);

  ControlLoopConfig config;
  ControlLoop loop(config, protocol::RatePlan::paper_rates());
  std::size_t applies = 0;
  loop.set_applier([&](const EpochPlan&) { ++applies; });

  loop.tracker().observe_frame(make_frame(0, 100e3, true, false, 0.9));
  const EpochPlan plan = loop.step(0, 1e-3);
  EXPECT_EQ(plan.epoch, 1u);  // the plan applies to the epoch after the close
  EXPECT_EQ(applies, 1u);

  loop.set_frozen(true);
  loop.step(1, 1e-3);
  EXPECT_EQ(applies, 1u);  // frozen: planned and published, not applied

  obs::set_event_log(nullptr);
  writer.flush();

  std::size_t plan_events = 0;
  std::size_t assign_events = 0;
  std::string line;
  std::istringstream in(jsonl.str());
  while (std::getline(in, line)) {
    const auto parsed = obs::parse_json(line, nullptr);
    ASSERT_TRUE(parsed.has_value() && parsed->is_object()) << line;
    if (parsed->member_str("type", "") != "control") continue;
    const std::string action{parsed->member_str("action", "")};
    if (action == "plan") {
      ++plan_events;
      EXPECT_EQ(parsed->member_str("policy", ""), "greedy");
    } else if (action == "assign") {
      ++assign_events;
      EXPECT_EQ(parsed->member_num("tag", 0.0), 1.0);
    }
  }
  EXPECT_EQ(plan_events, 2u);
  EXPECT_EQ(assign_events, 2u);
}

TEST(ControlLoop, ControlSetAdjustsKnobsAndWireStateReflectsThem) {
  ControlLoopConfig config;
  ControlLoop loop(config, protocol::RatePlan::paper_rates());

  net::ControlSet set;
  set.set_frozen = true;
  set.frozen = true;
  set.set_target_goodput = true;
  set.target_goodput = 4e5;
  set.set_min_confidence = true;
  set.min_confidence = 0.3;
  const net::ControlPlanMsg state = loop.apply_control_set(set);
  EXPECT_TRUE(state.enabled);
  EXPECT_TRUE(state.frozen);
  EXPECT_EQ(state.target_goodput, 4e5);
  EXPECT_EQ(state.min_confidence, 0.3);
  EXPECT_TRUE(loop.frozen());
  EXPECT_EQ(loop.objective().target_goodput, 4e5);

  // Partial set: untouched knobs survive.
  net::ControlSet thaw;
  thaw.set_frozen = true;
  thaw.frozen = false;
  const net::ControlPlanMsg after = loop.apply_control_set(thaw);
  EXPECT_FALSE(after.frozen);
  EXPECT_EQ(after.target_goodput, 4e5);
}

TEST(ControlLoop, LiveRoundTripOverAFrameServer) {
  ControlLoopConfig config;
  ControlLoop loop(config, protocol::RatePlan::paper_rates());
  loop.tracker().observe_frame(make_frame(0, 100e3, true, false, 0.9));
  loop.tracker().observe_frame(make_frame(1, 50e3, true, true, 0.6));
  loop.step(0, 1e-3);

  net::FrameServerConfig sc;
  sc.control_get = [&] { return loop.wire_state(); };
  sc.control_set = [&](const net::ControlSet& set) {
    return loop.apply_control_set(set);
  };
  net::FrameServer server(sc);

  const net::ControlPlanMsg fetched =
      net::fetch_control("127.0.0.1", server.port());
  EXPECT_TRUE(fetched.enabled);
  EXPECT_EQ(fetched.policy, "greedy");
  EXPECT_EQ(fetched.epoch, 1u);
  ASSERT_EQ(fetched.assignments.size(), 2u);
  const EpochPlan local = loop.last_plan();
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(fetched.assignments[i].tag, local.assignments[i].tag);
    EXPECT_EQ(fetched.assignments[i].rate, local.assignments[i].rate);
  }

  net::ControlSet set;
  set.set_frozen = true;
  set.frozen = true;
  set.set_max_rate = true;
  set.max_rate = 10e3;
  const net::ControlPlanMsg applied =
      net::send_control("127.0.0.1", server.port(), set);
  EXPECT_TRUE(applied.frozen);
  EXPECT_EQ(applied.max_rate, 10e3);
  EXPECT_TRUE(loop.frozen());
  EXPECT_EQ(loop.objective().max_rate, 10e3);

  EXPECT_EQ(server.counters().control_gets, 1u);
  EXPECT_EQ(server.counters().control_sets, 1u);
  server.shutdown(/*drain=*/false);
}

TEST(ControlLoop, ServerWithoutAControlPlaneAnswersDisabled) {
  net::FrameServer server(net::FrameServerConfig{});
  const net::ControlPlanMsg probe =
      net::fetch_control("127.0.0.1", server.port());
  EXPECT_FALSE(probe.enabled);
  EXPECT_TRUE(probe.assignments.empty());
  server.shutdown(/*drain=*/false);
}

// --- acceptance: scheduled vs static on a collision-heavy fleet -------------

/// True when `payload` came back CRC-clean in any decoded stream. Each
/// tag sends one fresh random 96-bit payload per epoch, so payload
/// equality is exact ground truth for "did tag i get through".
bool payload_recovered(const core::DecodeResult& decode,
                       const std::vector<bool>& payload) {
  for (const core::DecodedStream& s : decode.streams) {
    for (const protocol::ParsedFrame& f : s.frames) {
      if (f.valid() && f.payload == payload) return true;
    }
  }
  return false;
}

/// One A/B arm: a fleet of colliding same-rate tags run for a few epochs
/// under the named scheduling policy, returning payload bits recovered in
/// the scheduled (post-warm-up) epochs. Sensing uses ground truth (which
/// sent payloads came back) so the comparison isolates the *scheduler's*
/// value; the FleetTracker's folding has its own tests above. Both arms
/// build identical worlds from the same seed; only the policy differs.
std::size_t run_policy_arm(const std::string& policy) {
  Rng rng(20250808);
  sim::ScenarioConfig cfg;
  cfg.num_tags = 8;
  cfg.rates = {100.0 * kKbps};  // everyone on one lattice: collision-heavy
  cfg.sample_rate = 5.0 * kMsps;
  cfg.epoch_duration = 20e-3;
  sim::Scenario scenario(cfg, rng);
  const core::DecoderConfig decoder = scenario.default_decoder();

  // Candidate lattice restricted to rates whose 113-bit frame fits the
  // 20 ms epoch (11.3 ms at 10 kbps).
  protocol::RatePlan candidates;
  candidates.rates = {10.0 * kKbps, 50.0 * kKbps, 100.0 * kKbps};
  EpochScheduler scheduler(make_policy(policy, 0x1f53c0de), candidates);
  ControlObjective objective;
  objective.collision_penalty = 4.0;
  scheduler.set_objective(objective);

  constexpr double kAlpha = 0.5;
  std::vector<double> success(cfg.num_tags, 0.0);
  double pressure = 0.0;

  constexpr std::size_t kWarmup = 2;
  constexpr std::size_t kScheduled = 4;
  std::size_t scheduled_bits = 0;
  for (std::size_t e = 0; e < kWarmup + kScheduled; ++e) {
    std::vector<std::vector<std::vector<bool>>> payloads(cfg.num_tags);
    for (auto& per_tag : payloads) per_tag.push_back(rng.bits(96));
    const sim::EpochOutcome outcome =
        scenario.run_epoch_with_payloads(decoder, payloads, rng);

    std::size_t collided = 0;
    for (const core::DecodedStream& s : outcome.decode.streams) {
      if (s.collided) ++collided;
    }
    const double epoch_pressure =
        outcome.decode.streams.empty()
            ? 1.0
            : static_cast<double>(collided) / outcome.decode.streams.size();
    pressure = e == 0 ? epoch_pressure
                      : pressure + kAlpha * (epoch_pressure - pressure);
    for (std::size_t i = 0; i < cfg.num_tags; ++i) {
      const double got =
          payload_recovered(outcome.decode, payloads[i][0]) ? 1.0 : 0.0;
      if (e >= kWarmup && got > 0.0) scheduled_bits += 96;
      success[i] = e == 0 ? got : success[i] + kAlpha * (got - success[i]);
    }

    FleetSnapshot fleet;
    fleet.epoch = e;
    fleet.collision_pressure = pressure;
    for (std::size_t i = 0; i < cfg.num_tags; ++i) {
      TagState tag;
      tag.key = i + 1;
      tag.rate = scenario.rate_of(i);
      tag.epochs_seen = e + 1;
      tag.success = success[i];
      tag.confidence = 1.0;  // identity is ground truth here
      fleet.tags.push_back(tag);
    }
    const EpochPlan plan = scheduler.schedule(fleet, e + 1);
    for (const TagAssignment& assign : plan.assignments) {
      scenario.set_tag_rate(static_cast<std::size_t>(assign.tag - 1),
                            assign.rate);
    }
    if (std::getenv("LFBS_AB_DEBUG") != nullptr) {
      std::printf("[%s] epoch %zu: bits=%zu pressure=%.2f rates:",
                  policy.c_str(), e, scheduled_bits, pressure);
      for (const TagAssignment& a : plan.assignments) {
        std::printf(" %g", a.rate / 1e3);
      }
      std::printf("\n");
    }
  }
  return scheduled_bits;
}

TEST(ControlAcceptance, GreedySchedulingBeatsStaticOnACollisionHeavyFleet) {
  // Eight tags stacked on one 100 kbps lattice collide relentlessly; the
  // static baseline leaves them there, the greedy packer spreads them
  // across rate classes. Strictly more payload bits must come back under
  // scheduling — the PR's headline acceptance criterion. Deterministic:
  // both arms grow identical worlds from one seed.
  const std::size_t greedy_bits = run_policy_arm("greedy");
  const std::size_t static_bits = run_policy_arm("static");
  EXPECT_GT(greedy_bits, static_bits)
      << "greedy " << greedy_bits << " bits vs static " << static_bits;
}

// --- acceptance: observe-only control leaves the decode bit-identical -------

TEST(ControlAcceptance, ObserveOnlyTrackerKeepsDecodeBitIdentical) {
  // A control plane that senses but never actuates must not perturb one
  // decoded bit relative to the serial WindowedDecoder reference.
  Rng rng(99);
  sim::ScenarioConfig cfg;
  cfg.num_tags = 4;
  cfg.sample_rate = 5.0 * kMsps;
  cfg.epoch_duration = 10e-3;
  sim::Scenario scenario(cfg, rng);
  std::vector<std::vector<std::vector<bool>>> payloads(cfg.num_tags);
  for (auto& per_tag : payloads) per_tag.push_back(rng.bits(96));
  const signal::SampleBuffer capture = scenario.capture_epoch(payloads, rng);

  core::WindowedDecoderConfig wc;
  wc.decoder = scenario.default_decoder();
  const core::DecodeResult serial = core::WindowedDecoder(wc).decode(capture);

  FleetTracker tracker;
  runtime::RuntimeConfig rc;
  rc.windowed = wc;
  rc.workers = 2;
  runtime::DecodeRuntime rt(rc);
  const auto tap = rt.bus().subscribe([&](const runtime::FrameEvent& event) {
    tracker.observe_frame(event);
  });
  const runtime::RuntimeResult run = rt.decode(capture, 8192);
  rt.bus().unsubscribe(tap);
  tracker.end_epoch(0, cfg.epoch_duration);

  ASSERT_EQ(serial.streams.size(), run.decode.streams.size());
  for (std::size_t i = 0; i < serial.streams.size(); ++i) {
    const core::DecodedStream& a = serial.streams[i];
    const core::DecodedStream& b = run.decode.streams[i];
    EXPECT_EQ(a.start_sample, b.start_sample) << "stream " << i;
    EXPECT_EQ(a.rate, b.rate) << "stream " << i;
    EXPECT_EQ(a.bits, b.bits) << "stream " << i;
    ASSERT_EQ(a.frames.size(), b.frames.size()) << "stream " << i;
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
      EXPECT_EQ(a.frames[f].payload, b.frames[f].payload);
      EXPECT_EQ(a.frames[f].valid(), b.frames[f].valid());
    }
  }
  // And the tracker really watched the run: one tracked tag per stream
  // that published at least one frame event.
  std::size_t streams_with_frames = 0;
  for (const core::DecodedStream& s : run.decode.streams) {
    if (!s.frames.empty()) ++streams_with_frames;
  }
  EXPECT_EQ(tracker.tags_tracked(), streams_with_frames);
}

}  // namespace
}  // namespace lfbs::control

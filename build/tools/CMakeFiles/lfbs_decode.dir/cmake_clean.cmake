file(REMOVE_RECURSE
  "CMakeFiles/lfbs_decode.dir/lfbs_decode.cpp.o"
  "CMakeFiles/lfbs_decode.dir/lfbs_decode.cpp.o.d"
  "lfbs_decode"
  "lfbs_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

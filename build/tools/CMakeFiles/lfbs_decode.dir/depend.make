# Empty dependencies file for lfbs_decode.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_transistors.dir/bench_tab3_transistors.cpp.o"
  "CMakeFiles/bench_tab3_transistors.dir/bench_tab3_transistors.cpp.o.d"
  "bench_tab3_transistors"
  "bench_tab3_transistors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_transistors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_tab3_transistors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_parallelogram.dir/bench_fig05_parallelogram.cpp.o"
  "CMakeFiles/bench_fig05_parallelogram.dir/bench_fig05_parallelogram.cpp.o.d"
  "bench_fig05_parallelogram"
  "bench_fig05_parallelogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_parallelogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

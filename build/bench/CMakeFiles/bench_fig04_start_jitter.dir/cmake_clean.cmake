file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_start_jitter.dir/bench_fig04_start_jitter.cpp.o"
  "CMakeFiles/bench_fig04_start_jitter.dir/bench_fig04_start_jitter.cpp.o.d"
  "bench_fig04_start_jitter"
  "bench_fig04_start_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_start_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig04_start_jitter.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig14_snr_ber.
# This may be replaced when dependencies are built.

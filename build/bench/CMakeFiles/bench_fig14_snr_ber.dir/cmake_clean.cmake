file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_snr_ber.dir/bench_fig14_snr_ber.cpp.o"
  "CMakeFiles/bench_fig14_snr_ber.dir/bench_fig14_snr_ber.cpp.o.d"
  "bench_fig14_snr_ber"
  "bench_fig14_snr_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_snr_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

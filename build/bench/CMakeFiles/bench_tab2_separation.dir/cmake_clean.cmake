file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_separation.dir/bench_tab2_separation.cpp.o"
  "CMakeFiles/bench_tab2_separation.dir/bench_tab2_separation.cpp.o.d"
  "bench_tab2_separation"
  "bench_tab2_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

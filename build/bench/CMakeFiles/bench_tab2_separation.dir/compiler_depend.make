# Empty compiler generated dependencies file for bench_tab2_separation.
# This may be replaced when dependencies are built.

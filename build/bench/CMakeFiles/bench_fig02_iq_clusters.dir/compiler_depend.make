# Empty compiler generated dependencies file for bench_fig02_iq_clusters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_iq_clusters.dir/bench_fig02_iq_clusters.cpp.o"
  "CMakeFiles/bench_fig02_iq_clusters.dir/bench_fig02_iq_clusters.cpp.o.d"
  "bench_fig02_iq_clusters"
  "bench_fig02_iq_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_iq_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

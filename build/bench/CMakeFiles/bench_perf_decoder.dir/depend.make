# Empty dependencies file for bench_perf_decoder.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_decoder.dir/bench_perf_decoder.cpp.o"
  "CMakeFiles/bench_perf_decoder.dir/bench_perf_decoder.cpp.o.d"
  "bench_perf_decoder"
  "bench_perf_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

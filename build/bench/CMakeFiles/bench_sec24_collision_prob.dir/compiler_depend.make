# Empty compiler generated dependencies file for bench_sec24_collision_prob.
# This may be replaced when dependencies are built.

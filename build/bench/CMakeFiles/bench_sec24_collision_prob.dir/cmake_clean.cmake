file(REMOVE_RECURSE
  "CMakeFiles/bench_sec24_collision_prob.dir/bench_sec24_collision_prob.cpp.o"
  "CMakeFiles/bench_sec24_collision_prob.dir/bench_sec24_collision_prob.cpp.o.d"
  "bench_sec24_collision_prob"
  "bench_sec24_collision_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec24_collision_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

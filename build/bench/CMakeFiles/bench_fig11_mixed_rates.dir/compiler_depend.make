# Empty compiler generated dependencies file for bench_fig11_mixed_rates.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mixed_rates.dir/bench_fig11_mixed_rates.cpp.o"
  "CMakeFiles/bench_fig11_mixed_rates.dir/bench_fig11_mixed_rates.cpp.o.d"
  "bench_fig11_mixed_rates"
  "bench_fig11_mixed_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mixed_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

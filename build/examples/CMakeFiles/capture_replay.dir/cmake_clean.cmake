file(REMOVE_RECURSE
  "CMakeFiles/capture_replay.dir/capture_replay.cpp.o"
  "CMakeFiles/capture_replay.dir/capture_replay.cpp.o.d"
  "capture_replay"
  "capture_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/snr_planner.dir/snr_planner.cpp.o"
  "CMakeFiles/snr_planner.dir/snr_planner.cpp.o.d"
  "snr_planner"
  "snr_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snr_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for snr_planner.
# This may be replaced when dependencies are built.

# Empty dependencies file for rfid_inventory.
# This may be replaced when dependencies are built.

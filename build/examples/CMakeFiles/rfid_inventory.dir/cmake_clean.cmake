file(REMOVE_RECURSE
  "CMakeFiles/rfid_inventory.dir/rfid_inventory.cpp.o"
  "CMakeFiles/rfid_inventory.dir/rfid_inventory.cpp.o.d"
  "rfid_inventory"
  "rfid_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_network "/root/repo/build/examples/sensor_network")
set_tests_properties(example_sensor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rfid_inventory "/root/repo/build/examples/rfid_inventory")
set_tests_properties(example_rfid_inventory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_snr_planner "/root/repo/build/examples/snr_planner")
set_tests_properties(example_snr_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capture_replay "/root/repo/build/examples/capture_replay")
set_tests_properties(example_capture_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_budget "/root/repo/build/examples/power_budget")
set_tests_properties(example_power_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_session "/root/repo/build/examples/streaming_session")
set_tests_properties(example_streaming_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")

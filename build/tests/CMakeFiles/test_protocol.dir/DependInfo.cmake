
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/lfbs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/lfbs_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/lfbs_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lfbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lfbs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/lfbs_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lfbs_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/lfbs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/lfbs_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

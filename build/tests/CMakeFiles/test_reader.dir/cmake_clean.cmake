file(REMOVE_RECURSE
  "CMakeFiles/test_reader.dir/reader_test.cpp.o"
  "CMakeFiles/test_reader.dir/reader_test.cpp.o.d"
  "test_reader"
  "test_reader.pdb"
  "test_reader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

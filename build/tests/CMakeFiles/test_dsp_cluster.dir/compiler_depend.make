# Empty compiler generated dependencies file for test_dsp_cluster.
# This may be replaced when dependencies are built.

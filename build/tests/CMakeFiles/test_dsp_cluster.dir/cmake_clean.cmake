file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_cluster.dir/dsp_cluster_test.cpp.o"
  "CMakeFiles/test_dsp_cluster.dir/dsp_cluster_test.cpp.o.d"
  "test_dsp_cluster"
  "test_dsp_cluster.pdb"
  "test_dsp_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

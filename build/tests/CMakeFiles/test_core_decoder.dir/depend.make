# Empty dependencies file for test_core_decoder.
# This may be replaced when dependencies are built.

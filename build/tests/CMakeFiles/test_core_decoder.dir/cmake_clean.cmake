file(REMOVE_RECURSE
  "CMakeFiles/test_core_decoder.dir/core_decoder_test.cpp.o"
  "CMakeFiles/test_core_decoder.dir/core_decoder_test.cpp.o.d"
  "test_core_decoder"
  "test_core_decoder.pdb"
  "test_core_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

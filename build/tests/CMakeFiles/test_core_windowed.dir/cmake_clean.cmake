file(REMOVE_RECURSE
  "CMakeFiles/test_core_windowed.dir/core_windowed_test.cpp.o"
  "CMakeFiles/test_core_windowed.dir/core_windowed_test.cpp.o.d"
  "test_core_windowed"
  "test_core_windowed.pdb"
  "test_core_windowed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_windowed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

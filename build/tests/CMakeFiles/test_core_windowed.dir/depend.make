# Empty dependencies file for test_core_windowed.
# This may be replaced when dependencies are built.

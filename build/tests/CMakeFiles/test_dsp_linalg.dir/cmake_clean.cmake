file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_linalg.dir/dsp_linalg_test.cpp.o"
  "CMakeFiles/test_dsp_linalg.dir/dsp_linalg_test.cpp.o.d"
  "test_dsp_linalg"
  "test_dsp_linalg.pdb"
  "test_dsp_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

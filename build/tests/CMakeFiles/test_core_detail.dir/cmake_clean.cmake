file(REMOVE_RECURSE
  "CMakeFiles/test_core_detail.dir/core_pipeline_detail_test.cpp.o"
  "CMakeFiles/test_core_detail.dir/core_pipeline_detail_test.cpp.o.d"
  "test_core_detail"
  "test_core_detail.pdb"
  "test_core_detail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

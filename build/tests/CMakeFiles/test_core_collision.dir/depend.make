# Empty dependencies file for test_core_collision.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_collision.dir/core_collision_test.cpp.o"
  "CMakeFiles/test_core_collision.dir/core_collision_test.cpp.o.d"
  "test_core_collision"
  "test_core_collision.pdb"
  "test_core_collision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

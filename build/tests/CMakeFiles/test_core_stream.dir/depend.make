# Empty dependencies file for test_core_stream.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_stream.dir/core_stream_test.cpp.o"
  "CMakeFiles/test_core_stream.dir/core_stream_test.cpp.o.d"
  "test_core_stream"
  "test_core_stream.pdb"
  "test_core_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

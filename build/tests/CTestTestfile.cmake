# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_stats[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_tag[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_reader[1]_include.cmake")
include("/root/repo/build/tests/test_core_stream[1]_include.cmake")
include("/root/repo/build/tests/test_core_collision[1]_include.cmake")
include("/root/repo/build/tests/test_core_decoder[1]_include.cmake")
include("/root/repo/build/tests/test_core_windowed[1]_include.cmake")
include("/root/repo/build/tests/test_core_detail[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_extra[1]_include.cmake")

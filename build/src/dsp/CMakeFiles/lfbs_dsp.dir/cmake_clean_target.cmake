file(REMOVE_RECURSE
  "liblfbs_dsp.a"
)

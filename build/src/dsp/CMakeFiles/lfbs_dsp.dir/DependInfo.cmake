
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/filters.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/filters.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/filters.cpp.o.d"
  "/root/repo/src/dsp/gaussian.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/gaussian.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/gaussian.cpp.o.d"
  "/root/repo/src/dsp/kmeans.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/kmeans.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/kmeans.cpp.o.d"
  "/root/repo/src/dsp/linalg.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/linalg.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/linalg.cpp.o.d"
  "/root/repo/src/dsp/omp.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/omp.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/omp.cpp.o.d"
  "/root/repo/src/dsp/peaks.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/peaks.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/stats.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/stats.cpp.o.d"
  "/root/repo/src/dsp/viterbi.cpp" "src/dsp/CMakeFiles/lfbs_dsp.dir/viterbi.cpp.o" "gcc" "src/dsp/CMakeFiles/lfbs_dsp.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

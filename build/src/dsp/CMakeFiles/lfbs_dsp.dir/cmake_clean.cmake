file(REMOVE_RECURSE
  "CMakeFiles/lfbs_dsp.dir/filters.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/filters.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/gaussian.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/gaussian.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/kmeans.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/kmeans.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/linalg.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/linalg.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/omp.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/omp.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/peaks.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/peaks.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/resample.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/stats.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/lfbs_dsp.dir/viterbi.cpp.o"
  "CMakeFiles/lfbs_dsp.dir/viterbi.cpp.o.d"
  "liblfbs_dsp.a"
  "liblfbs_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lfbs_dsp.
# This may be replaced when dependencies are built.

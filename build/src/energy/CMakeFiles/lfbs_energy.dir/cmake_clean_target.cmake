file(REMOVE_RECURSE
  "liblfbs_energy.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/duty_cycle.cpp" "src/energy/CMakeFiles/lfbs_energy.dir/duty_cycle.cpp.o" "gcc" "src/energy/CMakeFiles/lfbs_energy.dir/duty_cycle.cpp.o.d"
  "/root/repo/src/energy/power_model.cpp" "src/energy/CMakeFiles/lfbs_energy.dir/power_model.cpp.o" "gcc" "src/energy/CMakeFiles/lfbs_energy.dir/power_model.cpp.o.d"
  "/root/repo/src/energy/transistor_model.cpp" "src/energy/CMakeFiles/lfbs_energy.dir/transistor_model.cpp.o" "gcc" "src/energy/CMakeFiles/lfbs_energy.dir/transistor_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

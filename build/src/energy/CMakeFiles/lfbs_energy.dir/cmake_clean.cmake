file(REMOVE_RECURSE
  "CMakeFiles/lfbs_energy.dir/duty_cycle.cpp.o"
  "CMakeFiles/lfbs_energy.dir/duty_cycle.cpp.o.d"
  "CMakeFiles/lfbs_energy.dir/power_model.cpp.o"
  "CMakeFiles/lfbs_energy.dir/power_model.cpp.o.d"
  "CMakeFiles/lfbs_energy.dir/transistor_model.cpp.o"
  "CMakeFiles/lfbs_energy.dir/transistor_model.cpp.o.d"
  "liblfbs_energy.a"
  "liblfbs_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lfbs_energy.
# This may be replaced when dependencies are built.

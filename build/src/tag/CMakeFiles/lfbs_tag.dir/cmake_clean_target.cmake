file(REMOVE_RECURSE
  "liblfbs_tag.a"
)

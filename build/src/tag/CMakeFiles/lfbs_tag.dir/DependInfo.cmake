
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tag/clock_model.cpp" "src/tag/CMakeFiles/lfbs_tag.dir/clock_model.cpp.o" "gcc" "src/tag/CMakeFiles/lfbs_tag.dir/clock_model.cpp.o.d"
  "/root/repo/src/tag/datapath.cpp" "src/tag/CMakeFiles/lfbs_tag.dir/datapath.cpp.o" "gcc" "src/tag/CMakeFiles/lfbs_tag.dir/datapath.cpp.o.d"
  "/root/repo/src/tag/modulator.cpp" "src/tag/CMakeFiles/lfbs_tag.dir/modulator.cpp.o" "gcc" "src/tag/CMakeFiles/lfbs_tag.dir/modulator.cpp.o.d"
  "/root/repo/src/tag/sensor.cpp" "src/tag/CMakeFiles/lfbs_tag.dir/sensor.cpp.o" "gcc" "src/tag/CMakeFiles/lfbs_tag.dir/sensor.cpp.o.d"
  "/root/repo/src/tag/start_trigger.cpp" "src/tag/CMakeFiles/lfbs_tag.dir/start_trigger.cpp.o" "gcc" "src/tag/CMakeFiles/lfbs_tag.dir/start_trigger.cpp.o.d"
  "/root/repo/src/tag/tag.cpp" "src/tag/CMakeFiles/lfbs_tag.dir/tag.cpp.o" "gcc" "src/tag/CMakeFiles/lfbs_tag.dir/tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lfbs_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/lfbs_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

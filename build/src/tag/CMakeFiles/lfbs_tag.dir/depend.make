# Empty dependencies file for lfbs_tag.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lfbs_tag.dir/clock_model.cpp.o"
  "CMakeFiles/lfbs_tag.dir/clock_model.cpp.o.d"
  "CMakeFiles/lfbs_tag.dir/datapath.cpp.o"
  "CMakeFiles/lfbs_tag.dir/datapath.cpp.o.d"
  "CMakeFiles/lfbs_tag.dir/modulator.cpp.o"
  "CMakeFiles/lfbs_tag.dir/modulator.cpp.o.d"
  "CMakeFiles/lfbs_tag.dir/sensor.cpp.o"
  "CMakeFiles/lfbs_tag.dir/sensor.cpp.o.d"
  "CMakeFiles/lfbs_tag.dir/start_trigger.cpp.o"
  "CMakeFiles/lfbs_tag.dir/start_trigger.cpp.o.d"
  "CMakeFiles/lfbs_tag.dir/tag.cpp.o"
  "CMakeFiles/lfbs_tag.dir/tag.cpp.o.d"
  "liblfbs_tag.a"
  "liblfbs_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lfbs_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblfbs_baseline.a"
)

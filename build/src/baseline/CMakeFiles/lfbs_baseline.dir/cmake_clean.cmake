file(REMOVE_RECURSE
  "CMakeFiles/lfbs_baseline.dir/ask_decoder.cpp.o"
  "CMakeFiles/lfbs_baseline.dir/ask_decoder.cpp.o.d"
  "CMakeFiles/lfbs_baseline.dir/buzz.cpp.o"
  "CMakeFiles/lfbs_baseline.dir/buzz.cpp.o.d"
  "CMakeFiles/lfbs_baseline.dir/cluster_only.cpp.o"
  "CMakeFiles/lfbs_baseline.dir/cluster_only.cpp.o.d"
  "CMakeFiles/lfbs_baseline.dir/gen2.cpp.o"
  "CMakeFiles/lfbs_baseline.dir/gen2.cpp.o.d"
  "CMakeFiles/lfbs_baseline.dir/tdma.cpp.o"
  "CMakeFiles/lfbs_baseline.dir/tdma.cpp.o.d"
  "liblfbs_baseline.a"
  "liblfbs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ask_decoder.cpp" "src/baseline/CMakeFiles/lfbs_baseline.dir/ask_decoder.cpp.o" "gcc" "src/baseline/CMakeFiles/lfbs_baseline.dir/ask_decoder.cpp.o.d"
  "/root/repo/src/baseline/buzz.cpp" "src/baseline/CMakeFiles/lfbs_baseline.dir/buzz.cpp.o" "gcc" "src/baseline/CMakeFiles/lfbs_baseline.dir/buzz.cpp.o.d"
  "/root/repo/src/baseline/cluster_only.cpp" "src/baseline/CMakeFiles/lfbs_baseline.dir/cluster_only.cpp.o" "gcc" "src/baseline/CMakeFiles/lfbs_baseline.dir/cluster_only.cpp.o.d"
  "/root/repo/src/baseline/gen2.cpp" "src/baseline/CMakeFiles/lfbs_baseline.dir/gen2.cpp.o" "gcc" "src/baseline/CMakeFiles/lfbs_baseline.dir/gen2.cpp.o.d"
  "/root/repo/src/baseline/tdma.cpp" "src/baseline/CMakeFiles/lfbs_baseline.dir/tdma.cpp.o" "gcc" "src/baseline/CMakeFiles/lfbs_baseline.dir/tdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/lfbs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lfbs_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/lfbs_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/lfbs_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

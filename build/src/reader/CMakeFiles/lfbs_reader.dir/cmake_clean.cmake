file(REMOVE_RECURSE
  "CMakeFiles/lfbs_reader.dir/carrier.cpp.o"
  "CMakeFiles/lfbs_reader.dir/carrier.cpp.o.d"
  "CMakeFiles/lfbs_reader.dir/receiver.cpp.o"
  "CMakeFiles/lfbs_reader.dir/receiver.cpp.o.d"
  "CMakeFiles/lfbs_reader.dir/session.cpp.o"
  "CMakeFiles/lfbs_reader.dir/session.cpp.o.d"
  "liblfbs_reader.a"
  "liblfbs_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

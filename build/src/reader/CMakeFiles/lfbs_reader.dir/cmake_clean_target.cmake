file(REMOVE_RECURSE
  "liblfbs_reader.a"
)

# Empty compiler generated dependencies file for lfbs_reader.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/crc.cpp" "src/protocol/CMakeFiles/lfbs_protocol.dir/crc.cpp.o" "gcc" "src/protocol/CMakeFiles/lfbs_protocol.dir/crc.cpp.o.d"
  "/root/repo/src/protocol/epoch.cpp" "src/protocol/CMakeFiles/lfbs_protocol.dir/epoch.cpp.o" "gcc" "src/protocol/CMakeFiles/lfbs_protocol.dir/epoch.cpp.o.d"
  "/root/repo/src/protocol/frame.cpp" "src/protocol/CMakeFiles/lfbs_protocol.dir/frame.cpp.o" "gcc" "src/protocol/CMakeFiles/lfbs_protocol.dir/frame.cpp.o.d"
  "/root/repo/src/protocol/identification.cpp" "src/protocol/CMakeFiles/lfbs_protocol.dir/identification.cpp.o" "gcc" "src/protocol/CMakeFiles/lfbs_protocol.dir/identification.cpp.o.d"
  "/root/repo/src/protocol/rate_control.cpp" "src/protocol/CMakeFiles/lfbs_protocol.dir/rate_control.cpp.o" "gcc" "src/protocol/CMakeFiles/lfbs_protocol.dir/rate_control.cpp.o.d"
  "/root/repo/src/protocol/reliability.cpp" "src/protocol/CMakeFiles/lfbs_protocol.dir/reliability.cpp.o" "gcc" "src/protocol/CMakeFiles/lfbs_protocol.dir/reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lfbs_protocol.dir/crc.cpp.o"
  "CMakeFiles/lfbs_protocol.dir/crc.cpp.o.d"
  "CMakeFiles/lfbs_protocol.dir/epoch.cpp.o"
  "CMakeFiles/lfbs_protocol.dir/epoch.cpp.o.d"
  "CMakeFiles/lfbs_protocol.dir/frame.cpp.o"
  "CMakeFiles/lfbs_protocol.dir/frame.cpp.o.d"
  "CMakeFiles/lfbs_protocol.dir/identification.cpp.o"
  "CMakeFiles/lfbs_protocol.dir/identification.cpp.o.d"
  "CMakeFiles/lfbs_protocol.dir/rate_control.cpp.o"
  "CMakeFiles/lfbs_protocol.dir/rate_control.cpp.o.d"
  "CMakeFiles/lfbs_protocol.dir/reliability.cpp.o"
  "CMakeFiles/lfbs_protocol.dir/reliability.cpp.o.d"
  "liblfbs_protocol.a"
  "liblfbs_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

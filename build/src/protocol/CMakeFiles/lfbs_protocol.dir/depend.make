# Empty dependencies file for lfbs_protocol.
# This may be replaced when dependencies are built.

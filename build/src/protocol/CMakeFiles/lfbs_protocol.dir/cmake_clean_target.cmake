file(REMOVE_RECURSE
  "liblfbs_protocol.a"
)

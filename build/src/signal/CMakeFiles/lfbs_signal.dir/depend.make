# Empty dependencies file for lfbs_signal.
# This may be replaced when dependencies are built.

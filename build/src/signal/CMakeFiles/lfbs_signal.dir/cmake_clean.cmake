file(REMOVE_RECURSE
  "CMakeFiles/lfbs_signal.dir/edge_detector.cpp.o"
  "CMakeFiles/lfbs_signal.dir/edge_detector.cpp.o.d"
  "CMakeFiles/lfbs_signal.dir/eye_pattern.cpp.o"
  "CMakeFiles/lfbs_signal.dir/eye_pattern.cpp.o.d"
  "CMakeFiles/lfbs_signal.dir/iq_io.cpp.o"
  "CMakeFiles/lfbs_signal.dir/iq_io.cpp.o.d"
  "CMakeFiles/lfbs_signal.dir/sample_buffer.cpp.o"
  "CMakeFiles/lfbs_signal.dir/sample_buffer.cpp.o.d"
  "CMakeFiles/lfbs_signal.dir/waveform.cpp.o"
  "CMakeFiles/lfbs_signal.dir/waveform.cpp.o.d"
  "liblfbs_signal.a"
  "liblfbs_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/edge_detector.cpp" "src/signal/CMakeFiles/lfbs_signal.dir/edge_detector.cpp.o" "gcc" "src/signal/CMakeFiles/lfbs_signal.dir/edge_detector.cpp.o.d"
  "/root/repo/src/signal/eye_pattern.cpp" "src/signal/CMakeFiles/lfbs_signal.dir/eye_pattern.cpp.o" "gcc" "src/signal/CMakeFiles/lfbs_signal.dir/eye_pattern.cpp.o.d"
  "/root/repo/src/signal/iq_io.cpp" "src/signal/CMakeFiles/lfbs_signal.dir/iq_io.cpp.o" "gcc" "src/signal/CMakeFiles/lfbs_signal.dir/iq_io.cpp.o.d"
  "/root/repo/src/signal/sample_buffer.cpp" "src/signal/CMakeFiles/lfbs_signal.dir/sample_buffer.cpp.o" "gcc" "src/signal/CMakeFiles/lfbs_signal.dir/sample_buffer.cpp.o.d"
  "/root/repo/src/signal/waveform.cpp" "src/signal/CMakeFiles/lfbs_signal.dir/waveform.cpp.o" "gcc" "src/signal/CMakeFiles/lfbs_signal.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/lfbs_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblfbs_signal.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lfbs_sim.dir/collision_math.cpp.o"
  "CMakeFiles/lfbs_sim.dir/collision_math.cpp.o.d"
  "CMakeFiles/lfbs_sim.dir/metrics.cpp.o"
  "CMakeFiles/lfbs_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/lfbs_sim.dir/plot.cpp.o"
  "CMakeFiles/lfbs_sim.dir/plot.cpp.o.d"
  "CMakeFiles/lfbs_sim.dir/scenario.cpp.o"
  "CMakeFiles/lfbs_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/lfbs_sim.dir/table.cpp.o"
  "CMakeFiles/lfbs_sim.dir/table.cpp.o.d"
  "liblfbs_sim.a"
  "liblfbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

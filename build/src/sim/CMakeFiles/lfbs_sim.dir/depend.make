# Empty dependencies file for lfbs_sim.
# This may be replaced when dependencies are built.

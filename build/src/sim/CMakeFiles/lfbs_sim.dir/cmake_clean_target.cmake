file(REMOVE_RECURSE
  "liblfbs_sim.a"
)

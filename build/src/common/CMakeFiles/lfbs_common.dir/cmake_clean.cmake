file(REMOVE_RECURSE
  "CMakeFiles/lfbs_common.dir/rng.cpp.o"
  "CMakeFiles/lfbs_common.dir/rng.cpp.o.d"
  "CMakeFiles/lfbs_common.dir/units.cpp.o"
  "CMakeFiles/lfbs_common.dir/units.cpp.o.d"
  "liblfbs_common.a"
  "liblfbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

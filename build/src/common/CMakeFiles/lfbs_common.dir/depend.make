# Empty dependencies file for lfbs_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblfbs_common.a"
)

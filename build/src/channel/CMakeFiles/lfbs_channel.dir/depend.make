# Empty dependencies file for lfbs_channel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblfbs_channel.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lfbs_channel.dir/channel_model.cpp.o"
  "CMakeFiles/lfbs_channel.dir/channel_model.cpp.o.d"
  "CMakeFiles/lfbs_channel.dir/dynamics.cpp.o"
  "CMakeFiles/lfbs_channel.dir/dynamics.cpp.o.d"
  "CMakeFiles/lfbs_channel.dir/link_budget.cpp.o"
  "CMakeFiles/lfbs_channel.dir/link_budget.cpp.o.d"
  "CMakeFiles/lfbs_channel.dir/noise.cpp.o"
  "CMakeFiles/lfbs_channel.dir/noise.cpp.o.d"
  "liblfbs_channel.a"
  "liblfbs_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

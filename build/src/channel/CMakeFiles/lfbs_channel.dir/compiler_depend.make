# Empty compiler generated dependencies file for lfbs_channel.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel_model.cpp" "src/channel/CMakeFiles/lfbs_channel.dir/channel_model.cpp.o" "gcc" "src/channel/CMakeFiles/lfbs_channel.dir/channel_model.cpp.o.d"
  "/root/repo/src/channel/dynamics.cpp" "src/channel/CMakeFiles/lfbs_channel.dir/dynamics.cpp.o" "gcc" "src/channel/CMakeFiles/lfbs_channel.dir/dynamics.cpp.o.d"
  "/root/repo/src/channel/link_budget.cpp" "src/channel/CMakeFiles/lfbs_channel.dir/link_budget.cpp.o" "gcc" "src/channel/CMakeFiles/lfbs_channel.dir/link_budget.cpp.o.d"
  "/root/repo/src/channel/noise.cpp" "src/channel/CMakeFiles/lfbs_channel.dir/noise.cpp.o" "gcc" "src/channel/CMakeFiles/lfbs_channel.dir/noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lfbs_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/lfbs_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lfbs_core.dir/bit_decoder.cpp.o"
  "CMakeFiles/lfbs_core.dir/bit_decoder.cpp.o.d"
  "CMakeFiles/lfbs_core.dir/collision_detector.cpp.o"
  "CMakeFiles/lfbs_core.dir/collision_detector.cpp.o.d"
  "CMakeFiles/lfbs_core.dir/collision_separator.cpp.o"
  "CMakeFiles/lfbs_core.dir/collision_separator.cpp.o.d"
  "CMakeFiles/lfbs_core.dir/error_corrector.cpp.o"
  "CMakeFiles/lfbs_core.dir/error_corrector.cpp.o.d"
  "CMakeFiles/lfbs_core.dir/lf_decoder.cpp.o"
  "CMakeFiles/lfbs_core.dir/lf_decoder.cpp.o.d"
  "CMakeFiles/lfbs_core.dir/stream_detector.cpp.o"
  "CMakeFiles/lfbs_core.dir/stream_detector.cpp.o.d"
  "CMakeFiles/lfbs_core.dir/windowed_decoder.cpp.o"
  "CMakeFiles/lfbs_core.dir/windowed_decoder.cpp.o.d"
  "liblfbs_core.a"
  "liblfbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bit_decoder.cpp" "src/core/CMakeFiles/lfbs_core.dir/bit_decoder.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/bit_decoder.cpp.o.d"
  "/root/repo/src/core/collision_detector.cpp" "src/core/CMakeFiles/lfbs_core.dir/collision_detector.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/collision_detector.cpp.o.d"
  "/root/repo/src/core/collision_separator.cpp" "src/core/CMakeFiles/lfbs_core.dir/collision_separator.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/collision_separator.cpp.o.d"
  "/root/repo/src/core/error_corrector.cpp" "src/core/CMakeFiles/lfbs_core.dir/error_corrector.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/error_corrector.cpp.o.d"
  "/root/repo/src/core/lf_decoder.cpp" "src/core/CMakeFiles/lfbs_core.dir/lf_decoder.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/lf_decoder.cpp.o.d"
  "/root/repo/src/core/stream_detector.cpp" "src/core/CMakeFiles/lfbs_core.dir/stream_detector.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/stream_detector.cpp.o.d"
  "/root/repo/src/core/windowed_decoder.cpp" "src/core/CMakeFiles/lfbs_core.dir/windowed_decoder.cpp.o" "gcc" "src/core/CMakeFiles/lfbs_core.dir/windowed_decoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/lfbs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lfbs_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/lfbs_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

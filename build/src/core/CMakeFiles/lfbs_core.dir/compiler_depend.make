# Empty compiler generated dependencies file for lfbs_core.
# This may be replaced when dependencies are built.

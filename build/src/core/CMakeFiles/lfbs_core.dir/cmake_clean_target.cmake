file(REMOVE_RECURSE
  "liblfbs_core.a"
)
